//! Spec files: load a whole [`SweepGrid`] from a TOML file, and write
//! the canonical TOML for any grid.
//!
//! The workspace builds offline, so this module carries its own parser
//! for the TOML subset the spec schema needs (the same reasoning that
//! produced the hand-rolled `SimRng`): tables, arrays of tables, inline
//! tables, arrays, strings, booleans, integers (decimal and `0x` hex,
//! `_` separators), and floats. Every parsed value carries its source
//! line and column, so decoding errors name the exact spot in the file:
//!
//! ```text
//! experiments/specs/fig3.toml:14:1: unknown key `alpa` in [sender]
//! ```
//!
//! The schema mirrors the spec types one-to-one — `[scenario]`,
//! `[topology]`, `[prior]`, `[sender]`, `[workload]`, and one `[[axis]]`
//! per sweep dimension. [`grid_to_toml`] emits it canonically, and the
//! round-trip `grid == parse(emit(grid))` is pinned by tests for every
//! preset, so the shipped files under `experiments/specs/` can never
//! drift from the presets they mirror.

use crate::grid::{Axis, SweepGrid};
use crate::spec::{
    CoexistSpec, ManyFlowSpec, ObserveSpec, PeerSpec, PriorSpec, QueueSpec, ScenarioSpec,
    SenderSpec, TopologySpec, WorkloadSpec,
};
use crate::traces;
use augur_elements::{CellularParams, GateSpec, ModelParams, RateProcess, TraceEnd};
use augur_inference::ModelPrior;
use augur_sim::{BitRate, Bits, Dur, Ppm};
use augur_topo::{FlowSpec, GraphTopology, LinkSpec};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A parse or decode failure, located in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err<T>(line: u32, col: u32, message: impl Into<String>) -> Result<T, ConfigError> {
    Err(ConfigError {
        line,
        col,
        message: message.into(),
    })
}

// ---------------------------------------------------------------------
// The TOML-subset document model.
// ---------------------------------------------------------------------

/// A parsed value with its source position.
#[derive(Debug, Clone)]
struct Value {
    line: u32,
    col: u32,
    payload: Payload,
}

#[derive(Debug, Clone)]
enum Payload {
    Str(String),
    /// Wide enough for the full `u64` seed space and negative literals;
    /// the typed accessors range-check on the way out.
    Int(i128),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
    Table(Table),
    /// `[[name]]` headers accumulate here.
    TableArray(Vec<Table>),
}

impl Payload {
    fn type_name(&self) -> &'static str {
        match self {
            Payload::Str(_) => "string",
            Payload::Int(_) => "integer",
            Payload::Float(_) => "float",
            Payload::Bool(_) => "boolean",
            Payload::Array(_) => "array",
            Payload::Table(_) => "table",
            Payload::TableArray(_) => "array of tables",
        }
    }
}

/// One `key = value` (or sub-table) entry, with the key's position.
#[derive(Debug, Clone)]
struct Entry {
    key: String,
    line: u32,
    col: u32,
    value: Value,
}

/// An ordered table. Lookup is linear — spec files are tiny.
#[derive(Debug, Clone, Default)]
struct Table {
    entries: Vec<Entry>,
    /// Whether the table was named by its own `[header]` (re-opening one
    /// of these is a duplicate; implicitly-created parents are not).
    explicit: bool,
    /// Position of the table's own header (or opening `{`), so errors in
    /// the Nth `[[axis]]` point at that axis, not the first.
    line: u32,
    col: u32,
}

impl Table {
    fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.bump();
        }
    }

    /// Skip whitespace, comments, and newlines.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    /// Consume end-of-line: optional whitespace, optional comment, then a
    /// newline or end of input.
    fn expect_eol(&mut self) -> Result<(), ConfigError> {
        self.skip_ws();
        if self.peek() == Some(b'#') {
            while !matches!(self.peek(), None | Some(b'\n')) {
                self.bump();
            }
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') | Some(b'\r') => {
                self.bump();
                Ok(())
            }
            Some(c) => err(
                self.line,
                self.col,
                format!("expected end of line, found {:?}", c as char),
            ),
        }
    }

    fn bare_key(&mut self) -> Result<(String, u32, u32), ConfigError> {
        let (line, col) = (self.line, self.col);
        let mut s = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() {
            return err(line, col, "expected a key");
        }
        Ok((s, line, col))
    }

    /// `a.b.c` — used in `[table]` headers.
    fn dotted_key(&mut self) -> Result<Vec<(String, u32, u32)>, ConfigError> {
        let mut parts = vec![self.bare_key()?];
        while self.peek() == Some(b'.') {
            self.bump();
            parts.push(self.bare_key()?);
        }
        Ok(parts)
    }

    fn string(&mut self) -> Result<Value, ConfigError> {
        let (line, col) = (self.line, self.col);
        self.bump(); // opening quote
                     // Collect raw bytes and decode once at the closing quote, so
                     // multi-byte UTF-8 content survives the byte-wise scan.
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return err(line, col, "unterminated string"),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => bytes.push(b'"'),
                    Some(b'\\') => bytes.push(b'\\'),
                    Some(b'n') => bytes.push(b'\n'),
                    Some(b't') => bytes.push(b'\t'),
                    other => {
                        return err(
                            self.line,
                            self.col,
                            format!(
                                "unsupported string escape \\{}",
                                other.map(|c| c as char).unwrap_or(' ')
                            ),
                        )
                    }
                },
                Some(b) => bytes.push(b),
            }
        }
        // The source arrived as &str, so any slice between escapes is
        // valid UTF-8; this cannot fail in practice but stays checked.
        let s = String::from_utf8(bytes).map_err(|_| ConfigError {
            line,
            col,
            message: "string is not valid UTF-8".into(),
        })?;
        Ok(Value {
            line,
            col,
            payload: Payload::Str(s),
        })
    }

    fn number(&mut self) -> Result<Value, ConfigError> {
        let (line, col) = (self.line, self.col);
        let mut raw = String::new();
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'+' | b'-' | b'.' | b'_') {
                raw.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
        let (sign, digits) = match cleaned.strip_prefix('-') {
            Some(rest) => (-1i128, rest),
            None => (1, cleaned.strip_prefix('+').unwrap_or(&cleaned)),
        };
        // Magnitudes are capped at u64::MAX (the widest field in the
        // schema); unsigned_abs avoids the i128::MIN overflow of abs().
        let payload = if let Some(hex) = digits.strip_prefix("0x").or(digits.strip_prefix("0X")) {
            match i128::from_str_radix(hex, 16) {
                // from_str_radix of bare hex digits is non-negative, so
                // the sign multiply below cannot overflow.
                Ok(v) if v <= u64::MAX as i128 => Payload::Int(sign * v),
                _ => return err(line, col, format!("bad hex integer {raw:?}")),
            }
        } else if digits.contains('.') || digits.contains('e') || digits.contains('E') {
            match cleaned.parse::<f64>() {
                Ok(v) => Payload::Float(v),
                Err(_) => return err(line, col, format!("bad float {raw:?}")),
            }
        } else {
            match cleaned.parse::<i128>() {
                Ok(v) if v.unsigned_abs() <= u64::MAX as u128 => Payload::Int(v),
                _ => return err(line, col, format!("bad integer {raw:?}")),
            }
        };
        Ok(Value { line, col, payload })
    }

    fn value(&mut self) -> Result<Value, ConfigError> {
        let (line, col) = (self.line, self.col);
        match self.peek() {
            None => err(line, col, "expected a value"),
            Some(b'"') => self.string(),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.bump();
                        break;
                    }
                    items.push(self.value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        _ => return err(self.line, self.col, "expected `,` or `]` in array"),
                    }
                }
                Ok(Value {
                    line,
                    col,
                    payload: Payload::Array(items),
                })
            }
            Some(b'{') => {
                self.bump();
                let mut table = Table {
                    explicit: true,
                    line,
                    col,
                    ..Table::default()
                };
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b'}') {
                        self.bump();
                        break;
                    }
                    let (key, kline, kcol) = self.bare_key()?;
                    self.skip_ws();
                    if self.bump() != Some(b'=') {
                        return err(self.line, self.col, format!("expected `=` after `{key}`"));
                    }
                    self.skip_ws();
                    let value = self.value()?;
                    if table.get(&key).is_some() {
                        return err(kline, kcol, format!("duplicate key `{key}`"));
                    }
                    table.entries.push(Entry {
                        key,
                        line: kline,
                        col: kcol,
                        value,
                    });
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b'}') => {}
                        _ => {
                            return err(self.line, self.col, "expected `,` or `}` in inline table")
                        }
                    }
                }
                Ok(Value {
                    line,
                    col,
                    payload: Payload::Table(table),
                })
            }
            Some(b't') | Some(b'f') => {
                let (word, wline, wcol) = self.bare_key()?;
                match word.as_str() {
                    "true" => Ok(Value {
                        line: wline,
                        col: wcol,
                        payload: Payload::Bool(true),
                    }),
                    "false" => Ok(Value {
                        line: wline,
                        col: wcol,
                        payload: Payload::Bool(false),
                    }),
                    other => err(wline, wcol, format!("unknown value `{other}`")),
                }
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+' => self.number(),
            Some(b) => err(line, col, format!("unexpected character {:?}", b as char)),
        }
    }

    fn parse_document(&mut self) -> Result<Table, ConfigError> {
        let mut root = Table {
            explicit: true,
            line: 1,
            col: 1,
            ..Table::default()
        };
        // Path of the table `key = value` lines currently land in; empty
        // means the root.
        let mut current: Vec<String> = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek().is_none() {
                return Ok(root);
            }
            if self.peek() == Some(b'[') {
                self.bump();
                let is_array = self.peek() == Some(b'[');
                if is_array {
                    self.bump();
                }
                self.skip_ws();
                let path = self.dotted_key()?;
                self.skip_ws();
                let closers: &[u8] = if is_array { b"]]" } else { b"]" };
                for _ in closers {
                    if self.bump() != Some(b']') {
                        return err(self.line, self.col, "unterminated table header");
                    }
                }
                self.expect_eol()?;
                define_table(&mut root, &path, is_array)?;
                current = path.into_iter().map(|(k, _, _)| k).collect();
            } else {
                let (key, kline, kcol) = self.bare_key()?;
                self.skip_ws();
                if self.bump() != Some(b'=') {
                    return err(self.line, self.col, format!("expected `=` after `{key}`"));
                }
                self.skip_ws();
                let value = self.value()?;
                self.expect_eol()?;
                let table = resolve_table(&mut root, &current);
                if table.get(&key).is_some() {
                    return err(kline, kcol, format!("duplicate key `{key}`"));
                }
                table.entries.push(Entry {
                    key,
                    line: kline,
                    col: kcol,
                    value,
                });
            }
        }
    }
}

/// Walk (creating implicit tables as needed) to the table at `path`,
/// entering the last element of any array-of-tables on the way.
fn resolve_table<'t>(root: &'t mut Table, path: &[String]) -> &'t mut Table {
    let mut t = root;
    for seg in path {
        let idx = t
            .entries
            .iter()
            .position(|e| &e.key == seg)
            .expect("header resolution created the path");
        t = match &mut t.entries[idx].value.payload {
            Payload::Table(sub) => sub,
            Payload::TableArray(subs) => subs.last_mut().expect("array headers push a table"),
            _ => unreachable!("header resolution rejected non-table keys"),
        };
    }
    t
}

/// Apply a `[path]` or `[[path]]` header to the document tree.
fn define_table(
    root: &mut Table,
    path: &[(String, u32, u32)],
    is_array: bool,
) -> Result<(), ConfigError> {
    let mut t = root;
    for (i, (seg, line, col)) in path.iter().enumerate() {
        let last = i + 1 == path.len();
        let idx = t.entries.iter().position(|e| &e.key == seg);
        match idx {
            None => {
                let payload = if last && is_array {
                    Payload::TableArray(vec![Table {
                        explicit: true,
                        line: *line,
                        col: *col,
                        ..Table::default()
                    }])
                } else {
                    Payload::Table(Table {
                        explicit: last,
                        line: *line,
                        col: *col,
                        ..Table::default()
                    })
                };
                t.entries.push(Entry {
                    key: seg.clone(),
                    line: *line,
                    col: *col,
                    value: Value {
                        line: *line,
                        col: *col,
                        payload,
                    },
                });
                let n = t.entries.len() - 1;
                t = match &mut t.entries[n].value.payload {
                    Payload::Table(sub) => sub,
                    Payload::TableArray(subs) => subs.last_mut().unwrap(),
                    _ => unreachable!(),
                };
            }
            Some(idx) => {
                let entry = &mut t.entries[idx];
                match &mut entry.value.payload {
                    Payload::Table(sub) => {
                        if last {
                            if is_array {
                                return err(
                                    *line,
                                    *col,
                                    format!("`{seg}` is a table, not an array of tables"),
                                );
                            }
                            if sub.explicit {
                                return err(*line, *col, format!("duplicate table [{seg}]"));
                            }
                            sub.explicit = true;
                        }
                        t = sub;
                    }
                    Payload::TableArray(subs) => {
                        if last {
                            if !is_array {
                                return err(*line, *col, format!("duplicate table [{seg}]"));
                            }
                            subs.push(Table {
                                explicit: true,
                                line: *line,
                                col: *col,
                                ..Table::default()
                            });
                        }
                        t = subs.last_mut().unwrap();
                    }
                    other => {
                        return err(
                            *line,
                            *col,
                            format!("key `{seg}` is a {}, not a table", other.type_name()),
                        )
                    }
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Typed decoding.
// ---------------------------------------------------------------------

/// A table being decoded: tracks which keys the decoder consumed so
/// [`Dec::finish`] can flag the first unknown one.
struct Dec<'a> {
    table: &'a Table,
    /// Context name for messages, e.g. `sender` or `axis`.
    ctx: String,
    used: Vec<bool>,
}

impl<'a> Dec<'a> {
    fn new(table: &'a Table, ctx: impl Into<String>) -> Dec<'a> {
        Dec {
            table,
            ctx: ctx.into(),
            used: vec![false; table.entries.len()],
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a Entry> {
        let idx = self.table.entries.iter().position(|e| e.key == key)?;
        self.used[idx] = true;
        Some(&self.table.entries[idx])
    }

    fn req(&mut self, key: &str, at: (u32, u32)) -> Result<&'a Entry, ConfigError> {
        match self.get(key) {
            Some(e) => Ok(e),
            None => err(at.0, at.1, format!("missing key `{key}` in [{}]", self.ctx)),
        }
    }

    /// Error on the first key no decoder consumed.
    fn finish(self) -> Result<(), ConfigError> {
        for (entry, used) in self.table.entries.iter().zip(&self.used) {
            if !used {
                return err(
                    entry.line,
                    entry.col,
                    format!("unknown key `{}` in [{}]", entry.key, self.ctx),
                );
            }
        }
        Ok(())
    }
}

fn expect_f64(v: &Value, what: &str) -> Result<f64, ConfigError> {
    match v.payload {
        Payload::Float(f) => Ok(f),
        // Integers coerce: `alpha = 1` is unambiguous.
        Payload::Int(i) => Ok(i as f64),
        ref other => err(
            v.line,
            v.col,
            format!("expected float for `{what}`, found {}", other.type_name()),
        ),
    }
}

fn expect_int(v: &Value, what: &str) -> Result<i128, ConfigError> {
    match v.payload {
        Payload::Int(i) => Ok(i),
        ref other => err(
            v.line,
            v.col,
            format!("expected integer for `{what}`, found {}", other.type_name()),
        ),
    }
}

fn expect_u64(v: &Value, what: &str) -> Result<u64, ConfigError> {
    let i = expect_int(v, what)?;
    u64::try_from(i).map_err(|_| ConfigError {
        line: v.line,
        col: v.col,
        message: format!("`{what}` must fit in a u64, got {i}"),
    })
}

/// A checked 32-bit read for ppm rates and shift counts — an
/// out-of-range value is an authoring error, never a silent wrap.
fn expect_u32(v: &Value, what: &str) -> Result<u32, ConfigError> {
    let i = expect_int(v, what)?;
    u32::try_from(i).map_err(|_| ConfigError {
        line: v.line,
        col: v.col,
        message: format!("`{what}` must fit in a u32, got {i}"),
    })
}

fn expect_bool(v: &Value, what: &str) -> Result<bool, ConfigError> {
    match v.payload {
        Payload::Bool(b) => Ok(b),
        ref other => err(
            v.line,
            v.col,
            format!("expected boolean for `{what}`, found {}", other.type_name()),
        ),
    }
}

fn expect_str<'a>(v: &'a Value, what: &str) -> Result<&'a str, ConfigError> {
    match &v.payload {
        Payload::Str(s) => Ok(s),
        other => err(
            v.line,
            v.col,
            format!("expected string for `{what}`, found {}", other.type_name()),
        ),
    }
}

fn expect_array<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], ConfigError> {
    match &v.payload {
        Payload::Array(items) => Ok(items),
        other => err(
            v.line,
            v.col,
            format!("expected array for `{what}`, found {}", other.type_name()),
        ),
    }
}

fn expect_table<'a>(v: &'a Value, what: &str) -> Result<&'a Table, ConfigError> {
    match &v.payload {
        Payload::Table(t) => Ok(t),
        other => err(
            v.line,
            v.col,
            format!("expected table for `{what}`, found {}", other.type_name()),
        ),
    }
}

fn dur_s(v: &Value, what: &str) -> Result<Dur, ConfigError> {
    let s = expect_f64(v, what)?;
    if !s.is_finite() || s < 0.0 {
        return err(v.line, v.col, format!("`{what}` must be >= 0 seconds"));
    }
    Ok(Dur::from_secs_f64(s))
}

/// Decode each element of an array entry with `f`, labelling elements
/// `key[i]` in error messages.
fn map_array<T>(
    entry: &Entry,
    f: impl Fn(&Value, &str) -> Result<T, ConfigError>,
) -> Result<Vec<T>, ConfigError> {
    let items = expect_array(&entry.value, &entry.key)?;
    items
        .iter()
        .enumerate()
        .map(|(i, v)| f(v, &format!("{}[{i}]", entry.key)))
        .collect()
}

fn decode_gate(v: &Value) -> Result<GateSpec, ConfigError> {
    let t = expect_table(v, "gate")?;
    let mut d = Dec::new(t, "gate");
    let kind_e = d.req("kind", (v.line, v.col))?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let gate = match kind {
        "always-on" => GateSpec::AlwaysOn,
        "square-wave" => GateSpec::SquareWave {
            half_period: dur_s(
                &d.req("half_period_s", (v.line, v.col))?.value,
                "half_period_s",
            )?,
            initially_connected: expect_bool(
                &d.req("initially_connected", (v.line, v.col))?.value,
                "initially_connected",
            )?,
        },
        "intermittent" => GateSpec::Intermittent {
            mtts: dur_s(&d.req("mtts_s", (v.line, v.col))?.value, "mtts_s")?,
            epoch: dur_s(&d.req("epoch_s", (v.line, v.col))?.value, "epoch_s")?,
            initially_connected: expect_bool(
                &d.req("initially_connected", (v.line, v.col))?.value,
                "initially_connected",
            )?,
        },
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!(
                    "unknown gate kind `{other}` (expected always-on, square-wave, intermittent)"
                ),
            )
        }
    };
    d.finish()?;
    Ok(gate)
}

/// A positive bits-per-second read — [`BitRate::from_bps`] panics on
/// zero, so the decoder must reject it with a positioned error first.
fn expect_rate_bps(v: &Value, what: &str) -> Result<BitRate, ConfigError> {
    let bps = expect_u64(v, what)?;
    if bps == 0 {
        return err(v.line, v.col, format!("`{what}` must be positive"));
    }
    Ok(BitRate::from_bps(bps))
}

/// Decode a `{ file = "…", end = "loop" | "hold-last" }` trace
/// reference, loading and validating the CSV (relative paths resolve
/// against `base`, the spec file's directory).
fn decode_trace(
    d: &mut Dec<'_>,
    at: (u32, u32),
    base: Option<&Path>,
) -> Result<RateProcess, ConfigError> {
    let file_e = d.req("file", at)?;
    let file = expect_str(&file_e.value, "file")?;
    let end_e = d.req("end", at)?;
    let end = match expect_str(&end_e.value, "end")? {
        "loop" => TraceEnd::Loop,
        "hold-last" => TraceEnd::HoldLast,
        other => {
            return err(
                end_e.value.line,
                end_e.value.col,
                format!("unknown trace end policy `{other}` (expected loop, hold-last)"),
            )
        }
    };
    let resolved = match base {
        Some(dir) => dir.join(file),
        None => PathBuf::from(file),
    };
    let at_file = (file_e.value.line, file_e.value.col);
    let src = std::fs::read_to_string(&resolved).map_err(|e| ConfigError {
        line: at_file.0,
        col: at_file.1,
        message: format!("cannot read trace file {}: {e}", resolved.display()),
    })?;
    // Loader errors are positioned inside the CSV; carry that position in
    // the message and point the spec error at the `file` value.
    let samples = traces::parse_trace_csv(&src).map_err(|te| ConfigError {
        line: at_file.0,
        col: at_file.1,
        message: format!("{}:{te}", resolved.display()),
    })?;
    let rate = RateProcess::Trace {
        label: file.to_string(),
        samples,
        end,
    };
    if let Err(message) = rate.check() {
        return err(
            at_file.0,
            at_file.1,
            format!("{}: {message}", resolved.display()),
        );
    }
    Ok(rate)
}

fn decode_rate(v: &Value, base: Option<&Path>) -> Result<RateProcess, ConfigError> {
    let t = expect_table(v, "rate")?;
    let mut d = Dec::new(t, "rate");
    let kind_e = d.req("kind", (v.line, v.col))?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let rate = match kind {
        "constant" => RateProcess::Const(expect_rate_bps(
            &d.req("bps", (v.line, v.col))?.value,
            "bps",
        )?),
        "schedule" => {
            let period_e = d.req("period_s", (v.line, v.col))?;
            let period = dur_s(&period_e.value, "period_s")?;
            if period == Dur::ZERO {
                return err(
                    period_e.value.line,
                    period_e.value.col,
                    "`period_s` must be positive",
                );
            }
            let steps_e = d.req("steps", (v.line, v.col))?;
            // Decoded step by step (not via map_array) so every invariant
            // violation points at the offending step — `--check` must
            // reject here what `Link::new` would otherwise panic on.
            let items = expect_array(&steps_e.value, "steps")?;
            let mut steps: Vec<(Dur, BitRate)> = Vec::with_capacity(items.len());
            for (i, sv) in items.iter().enumerate() {
                let what = format!("steps[{i}]");
                let st = expect_table(sv, &what)?;
                let mut sd = Dec::new(st, &what);
                let at = dur_s(&sd.req("at_s", (sv.line, sv.col))?.value, "at_s")?;
                let bps = expect_rate_bps(&sd.req("bps", (sv.line, sv.col))?.value, "bps")?;
                sd.finish()?;
                match steps.last() {
                    None if at != Dur::ZERO => {
                        return err(sv.line, sv.col, "the first step must have `at_s = 0`")
                    }
                    Some(&(prev, _)) if at <= prev => {
                        return err(
                            sv.line,
                            sv.col,
                            format!("step offsets must be strictly increasing ({at} after {prev})"),
                        )
                    }
                    _ => {}
                }
                if at >= period {
                    return err(
                        sv.line,
                        sv.col,
                        format!("step offset {at} does not fit in the period {period}"),
                    );
                }
                steps.push((at, bps));
            }
            if steps.is_empty() {
                return err(
                    steps_e.value.line,
                    steps_e.value.col,
                    "`steps` must be non-empty",
                );
            }
            RateProcess::Schedule { steps, period }
        }
        "trace" => decode_trace(&mut d, (v.line, v.col), base)?,
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!("unknown rate kind `{other}` (expected constant, schedule, trace)"),
            )
        }
    };
    d.finish()?;
    Ok(rate)
}

fn decode_queue(v: &Value) -> Result<QueueSpec, ConfigError> {
    let t = expect_table(v, "queue")?;
    let mut d = Dec::new(t, "queue");
    let kind_e = d.req("kind", (v.line, v.col))?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let queue = match kind {
        "drop-tail" => QueueSpec::DropTail,
        "red" => QueueSpec::Red {
            min_th: Bits::new(expect_u64(
                &d.req("min_th_bits", (v.line, v.col))?.value,
                "min_th_bits",
            )?),
            max_th: Bits::new(expect_u64(
                &d.req("max_th_bits", (v.line, v.col))?.value,
                "max_th_bits",
            )?),
            max_p: Ppm::new(expect_u32(
                &d.req("max_p_ppm", (v.line, v.col))?.value,
                "max_p_ppm",
            )?),
            w_shift: expect_u32(&d.req("w_shift", (v.line, v.col))?.value, "w_shift")?,
        },
        "codel" => QueueSpec::CoDel {
            target: dur_s(&d.req("target_s", (v.line, v.col))?.value, "target_s")?,
            interval: dur_s(&d.req("interval_s", (v.line, v.col))?.value, "interval_s")?,
        },
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!("unknown queue kind `{other}` (expected drop-tail, red, codel)"),
            )
        }
    };
    d.finish()?;
    Ok(queue)
}

/// One `{ name, from, to, bps, delay_s, buffer_bits[, queue] }` link of
/// a graph topology; `queue` defaults to drop-tail.
fn decode_link(v: &Value, what: &str) -> Result<LinkSpec, ConfigError> {
    let t = expect_table(v, what)?;
    let at = (v.line, v.col);
    let mut d = Dec::new(t, what);
    let link = LinkSpec {
        name: expect_str(&d.req("name", at)?.value, "name")?.to_string(),
        from: expect_str(&d.req("from", at)?.value, "from")?.to_string(),
        to: expect_str(&d.req("to", at)?.value, "to")?.to_string(),
        rate: expect_rate_bps(&d.req("bps", at)?.value, "bps")?,
        delay: dur_s(&d.req("delay_s", at)?.value, "delay_s")?,
        buffer: Bits::new(expect_u64(&d.req("buffer_bits", at)?.value, "buffer_bits")?),
        queue: match d.get("queue") {
            Some(e) => decode_queue(&e.value)?,
            None => QueueSpec::DropTail,
        },
    };
    d.finish()?;
    Ok(link)
}

/// One `{ name, class, src, dst[, path] }` flow of a graph topology;
/// without `path` the compiler routes it over the fewest hops.
fn decode_flow(v: &Value, what: &str) -> Result<FlowSpec, ConfigError> {
    let t = expect_table(v, what)?;
    let at = (v.line, v.col);
    let mut d = Dec::new(t, what);
    let flow = FlowSpec {
        name: expect_str(&d.req("name", at)?.value, "name")?.to_string(),
        class: expect_str(&d.req("class", at)?.value, "class")?.to_string(),
        src: expect_str(&d.req("src", at)?.value, "src")?.to_string(),
        dst: expect_str(&d.req("dst", at)?.value, "dst")?.to_string(),
        path: match d.get("path") {
            Some(e) => Some(map_array(e, |v, what| {
                expect_str(v, what).map(str::to_string)
            })?),
            None => None,
        },
    };
    d.finish()?;
    Ok(flow)
}

fn decode_topology(
    t: &Table,
    at: (u32, u32),
    base: Option<&Path>,
) -> Result<TopologySpec, ConfigError> {
    let mut d = Dec::new(t, "topology");
    let kind_e = d.req("kind", at)?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let topo = match kind {
        "model" => {
            let params = ModelParams {
                link_rate: expect_rate_bps(&d.req("link_bps", at)?.value, "link_bps")?,
                cross_rate: expect_rate_bps(&d.req("cross_bps", at)?.value, "cross_bps")?,
                gate: decode_gate(&d.req("gate", at)?.value)?,
                loss: Ppm::new(expect_u32(&d.req("loss_ppm", at)?.value, "loss_ppm")?),
                buffer_capacity: Bits::new(expect_u64(
                    &d.req("buffer_bits", at)?.value,
                    "buffer_bits",
                )?),
                initial_fullness: Bits::new(expect_u64(
                    &d.req("initial_fullness_bits", at)?.value,
                    "initial_fullness_bits",
                )?),
                packet_size: Bits::new(expect_u64(
                    &d.req("packet_bits", at)?.value,
                    "packet_bits",
                )?),
                cross_active: expect_bool(&d.req("cross_active", at)?.value, "cross_active")?,
            };
            TopologySpec::Model(params)
        }
        "cellular" => TopologySpec::Cellular {
            params: CellularParams {
                buffer_capacity: Bits::new(expect_u64(
                    &d.req("buffer_bits", at)?.value,
                    "buffer_bits",
                )?),
                rate: decode_rate(&d.req("rate", at)?.value, base)?,
                arq_loss: Ppm::new(expect_u32(
                    &d.req("arq_loss_ppm", at)?.value,
                    "arq_loss_ppm",
                )?),
                arq_retry_delay: dur_s(
                    &d.req("arq_retry_delay_s", at)?.value,
                    "arq_retry_delay_s",
                )?,
                propagation: dur_s(&d.req("propagation_s", at)?.value, "propagation_s")?,
            },
            queue: decode_queue(&d.req("queue", at)?.value)?,
        },
        "graph" => {
            let g = GraphTopology {
                nodes: map_array(d.req("nodes", at)?, |v, what| {
                    expect_str(v, what).map(str::to_string)
                })?,
                links: map_array(d.req("links", at)?, decode_link)?,
                flows: map_array(d.req("flows", at)?, decode_flow)?,
                packet_size: Bits::new(expect_u64(
                    &d.req("packet_bits", at)?.value,
                    "packet_bits",
                )?),
            };
            // Routing problems (unknown nodes, cycles, unreachable
            // destinations, …) are authoring errors: surface them here,
            // at `--check` time, not as a runner panic mid-sweep.
            if let Err(e) = augur_topo::validate(&g) {
                return err(at.0, at.1, format!("invalid graph topology: {e}"));
            }
            TopologySpec::Graph(g)
        }
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!("unknown topology kind `{other}` (expected model, cellular, graph)"),
            )
        }
    };
    d.finish()?;
    Ok(topo)
}

fn decode_prior(t: &Table, at: (u32, u32)) -> Result<PriorSpec, ConfigError> {
    let mut d = Dec::new(t, "prior");
    let kind_e = d.req("kind", at)?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let prior = match kind {
        "paper" => PriorSpec::Paper,
        "small" => PriorSpec::Small,
        "fine-link-rate" => {
            // PriorSpec::hypotheses asserts these at run time; `--check`
            // must reject them here with a position instead.
            let n_e = d.req("n", at)?;
            let n = expect_u64(&n_e.value, "n")? as usize;
            if n == 0 {
                return err(
                    n_e.value.line,
                    n_e.value.col,
                    "`n` must be at least 1 (the prior needs a hypothesis)",
                );
            }
            let lo_e = d.req("lo_bps", at)?;
            let lo_bps = expect_u64(&lo_e.value, "lo_bps")?;
            let hi_bps = expect_u64(&d.req("hi_bps", at)?.value, "hi_bps")?;
            if lo_bps > hi_bps {
                return err(
                    lo_e.value.line,
                    lo_e.value.col,
                    format!("`lo_bps` ({lo_bps}) must not exceed `hi_bps` ({hi_bps})"),
                );
            }
            PriorSpec::FineLinkRate { n, lo_bps, hi_bps }
        }
        "custom" => {
            let link_rates = map_array(d.req("link_rates_bps", at)?, expect_rate_bps)?;
            let cross_fracs_ppm = map_array(d.req("cross_fracs_ppm", at)?, expect_u32)?;
            let losses = map_array(d.req("losses_ppm", at)?, |v, w| {
                Ok(Ppm::new(expect_u32(v, w)?))
            })?;
            let buffer_capacities = map_array(d.req("buffer_capacities_bits", at)?, |v, w| {
                Ok(Bits::new(expect_u64(v, w)?))
            })?;
            let fullness_step = match d.get("fullness_step_bits") {
                Some(e) => Some(Bits::new(expect_u64(&e.value, "fullness_step_bits")?)),
                None => None,
            };
            let gate_initial = map_array(d.req("gate_initial", at)?, expect_bool)?;
            PriorSpec::Custom(ModelPrior {
                link_rates,
                cross_fracs_ppm,
                losses,
                buffer_capacities,
                fullness_step,
                mtts: dur_s(&d.req("mtts_s", at)?.value, "mtts_s")?,
                epoch: dur_s(&d.req("epoch_s", at)?.value, "epoch_s")?,
                gate_initial,
                packet_size: Bits::new(expect_u64(
                    &d.req("packet_bits", at)?.value,
                    "packet_bits",
                )?),
                cross_active: expect_bool(&d.req("cross_active", at)?.value, "cross_active")?,
            })
        }
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!(
                    "unknown prior kind `{other}` (expected paper, small, fine-link-rate, custom)"
                ),
            )
        }
    };
    d.finish()?;
    Ok(prior)
}

fn decode_sender(t: &Table, at: (u32, u32)) -> Result<SenderSpec, ConfigError> {
    let mut d = Dec::new(t, "sender");
    let kind_e = d.req("kind", at)?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let sender = match kind {
        "isender-exact" => SenderSpec::IsenderExact {
            alpha: expect_f64(&d.req("alpha", at)?.value, "alpha")?,
            latency_penalty: expect_f64(&d.req("latency_penalty", at)?.value, "latency_penalty")?,
            max_branches: expect_u64(&d.req("max_branches", at)?.value, "max_branches")? as usize,
        },
        "isender-particle" => SenderSpec::IsenderParticle {
            alpha: expect_f64(&d.req("alpha", at)?.value, "alpha")?,
            latency_penalty: expect_f64(&d.req("latency_penalty", at)?.value, "latency_penalty")?,
            n_particles: expect_u64(&d.req("n_particles", at)?.value, "n_particles")? as usize,
        },
        "tcp-reno" => SenderSpec::TcpReno {
            max_window: expect_u64(&d.req("max_window", at)?.value, "max_window")?,
        },
        "tcp-cubic" => SenderSpec::TcpCubic {
            max_window: expect_u64(&d.req("max_window", at)?.value, "max_window")?,
        },
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!(
                    "unknown sender kind `{other}` (expected isender-exact, isender-particle, \
                     tcp-reno, tcp-cubic)"
                ),
            )
        }
    };
    d.finish()?;
    Ok(sender)
}

fn decode_peer(v: &Value, what: &str) -> Result<PeerSpec, ConfigError> {
    let t = expect_table(v, what)?;
    let mut d = Dec::new(t, what);
    let kind_e = d.req("kind", (v.line, v.col))?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let peer = match kind {
        "isender" => PeerSpec::Isender {
            alpha: expect_f64(&d.req("alpha", (v.line, v.col))?.value, "alpha")?,
        },
        "aimd" => PeerSpec::Aimd {
            timeout: dur_s(&d.req("timeout_s", (v.line, v.col))?.value, "timeout_s")?,
        },
        "tcp-reno" => PeerSpec::TcpReno {
            max_window: expect_u64(&d.req("max_window", (v.line, v.col))?.value, "max_window")?,
        },
        "tcp-cubic" => PeerSpec::TcpCubic {
            max_window: expect_u64(&d.req("max_window", (v.line, v.col))?.value, "max_window")?,
        },
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!(
                    "unknown peer kind `{other}` (expected isender, aimd, tcp-reno, tcp-cubic)"
                ),
            )
        }
    };
    d.finish()?;
    Ok(peer)
}

fn decode_workload(t: &Table, at: (u32, u32)) -> Result<WorkloadSpec, ConfigError> {
    let mut d = Dec::new(t, "workload");
    let kind_e = d.req("kind", at)?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let workload = match kind {
        "closed-loop" => WorkloadSpec::ClosedLoop,
        "scripted-ping" => WorkloadSpec::ScriptedPing {
            interval: dur_s(&d.req("interval_s", at)?.value, "interval_s")?,
        },
        "coexist" => {
            let peers_e = d.req("peers", at)?;
            let peers = map_array(peers_e, decode_peer)?;
            if peers.is_empty() {
                return err(
                    peers_e.value.line,
                    peers_e.value.col,
                    "`peers` must name at least one competitor",
                );
            }
            WorkloadSpec::Coexist(CoexistSpec { peers })
        }
        "many-flows" => {
            let flows_e = d.req("flows", at)?;
            let flows = expect_u64(&flows_e.value, "flows")? as usize;
            if flows == 0 || flows > usize::from(u16::MAX) + 1 {
                return err(
                    flows_e.value.line,
                    flows_e.value.col,
                    format!(
                        "`flows` must be between 1 and 65536 (wire flow ids are u16), got {flows}"
                    ),
                );
            }
            let mix_e = d.req("mix", at)?;
            let mix = map_array(mix_e, decode_peer)?;
            if mix.is_empty() {
                return err(
                    mix_e.value.line,
                    mix_e.value.col,
                    "`mix` must name at least one agent kind",
                );
            }
            if mix.iter().any(|p| matches!(p, PeerSpec::Isender { .. })) {
                return err(
                    mix_e.value.line,
                    mix_e.value.col,
                    "`mix` agents must be belief-free (aimd, tcp-reno, tcp-cubic) — a \
                     many-flow run cannot carry one belief engine per flow",
                );
            }
            WorkloadSpec::ManyFlows(ManyFlowSpec { flows, mix })
        }
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!(
                    "unknown workload kind `{other}` (expected closed-loop, scripted-ping, \
                     coexist, many-flows)"
                ),
            )
        }
    };
    d.finish()?;
    Ok(workload)
}

/// `[observe]` — optional observability arming: `trace_events` records
/// the structured event stream, `snapshot_every_s` sets the posterior
/// snapshot cadence. Both default off, matching `ObserveSpec::default()`.
fn decode_observe(t: &Table, _at: (u32, u32)) -> Result<ObserveSpec, ConfigError> {
    let mut d = Dec::new(t, "observe");
    let mut spec = ObserveSpec::default();
    if let Some(e) = d.get("trace_events") {
        spec.trace_events = expect_bool(&e.value, "trace_events")?;
    }
    if let Some(e) = d.get("snapshot_every_s") {
        let every = dur_s(&e.value, "snapshot_every_s")?;
        if every == Dur::ZERO {
            return err(
                e.value.line,
                e.value.col,
                "`snapshot_every_s` must be > 0 seconds (omit the key to disable snapshots)",
            );
        }
        spec.snapshot_every = Some(every);
    }
    d.finish()?;
    Ok(spec)
}

fn decode_axis(t: &Table, at: (u32, u32), base: Option<&Path>) -> Result<Axis, ConfigError> {
    let mut d = Dec::new(t, "axis");
    let kind_e = d.req("kind", at)?;
    let kind = expect_str(&kind_e.value, "kind")?;
    let axis = match kind {
        "alpha" => Axis::Alpha(map_array(d.req("values", at)?, expect_f64)?),
        "latency-penalty" => Axis::LatencyPenalty(map_array(d.req("values", at)?, expect_f64)?),
        "link-rate" => Axis::LinkRate(map_array(d.req("values", at)?, expect_rate_bps)?),
        "cross-rate" => Axis::CrossRate(map_array(d.req("values", at)?, expect_rate_bps)?),
        "buffer-capacity" => Axis::BufferCapacity(map_array(d.req("values", at)?, |v, w| {
            Ok(Bits::new(expect_u64(v, w)?))
        })?),
        "initial-fullness" => Axis::InitialFullness(map_array(d.req("values", at)?, |v, w| {
            Ok(Bits::new(expect_u64(v, w)?))
        })?),
        "loss" => Axis::Loss(map_array(d.req("values", at)?, |v, w| {
            Ok(Ppm::new(expect_u32(v, w)?))
        })?),
        "sender" => Axis::Sender(map_array(d.req("values", at)?, |v, w| {
            decode_sender(expect_table(v, w)?, (v.line, v.col))
        })?),
        "peer" => Axis::Peer(map_array(d.req("values", at)?, decode_peer)?),
        "queue" => Axis::Queue(map_array(d.req("values", at)?, |v, _w| decode_queue(v))?),
        "rate-trace" => {
            let values_e = d.req("values", at)?;
            let rates = map_array(values_e, |v, w| {
                let vt = expect_table(v, w)?;
                let mut vd = Dec::new(vt, w);
                let rate = decode_trace(&mut vd, (v.line, v.col), base)?;
                vd.finish()?;
                Ok(rate)
            })?;
            // Sweep coordinates label each point by the trace's file
            // stem; two points sharing a stem would be indistinguishable
            // in every report row.
            let mut stems: Vec<String> = rates.iter().map(crate::grid::rate_point_label).collect();
            stems.sort();
            if let Some(dup) = stems.windows(2).find(|w| w[0] == w[1]) {
                return err(
                    values_e.value.line,
                    values_e.value.col,
                    format!(
                        "rate-trace axis points must have distinct file stems (`{}` repeats)",
                        dup[0]
                    ),
                );
            }
            Axis::RateTrace(rates)
        }
        "prior-size" => Axis::PriorSize(map_array(d.req("values", at)?, |v, w| {
            Ok(expect_u64(v, w)? as usize)
        })?),
        "flows" => Axis::Flows(map_array(d.req("values", at)?, |v, w| {
            let n = expect_u64(v, w)? as usize;
            if n == 0 || n > usize::from(u16::MAX) + 1 {
                return err(
                    v.line,
                    v.col,
                    format!("flow counts must be between 1 and 65536, got {n}"),
                );
            }
            Ok(n)
        })?),
        "seeds" => Axis::Seeds(expect_u64(&d.req("count", at)?.value, "count")? as usize),
        other => {
            return err(
                kind_e.value.line,
                kind_e.value.col,
                format!(
                    "unknown axis kind `{other}` (expected alpha, latency-penalty, link-rate, \
                     cross-rate, buffer-capacity, initial-fullness, loss, sender, peer, queue, \
                     rate-trace, prior-size, flows, seeds)"
                ),
            )
        }
    };
    d.finish()?;
    Ok(axis)
}

/// Parse spec-file text into a [`SweepGrid`]. Relative trace-file paths
/// resolve against the current directory; use [`parse_grid_at`] (or
/// [`load_grid`]) to resolve them against the spec file instead.
pub fn parse_grid(src: &str) -> Result<SweepGrid, ConfigError> {
    parse_grid_at(src, None)
}

/// [`parse_grid`] with an explicit base directory for relative paths in
/// the spec (trace files) — [`load_grid`] passes the spec file's parent.
pub fn parse_grid_at(src: &str, base: Option<&Path>) -> Result<SweepGrid, ConfigError> {
    let root = Parser::new(src).parse_document()?;
    let mut d = Dec::new(&root, "root");
    let at = (1, 1);

    let scen_e = d.req("scenario", at)?;
    let scen_t = expect_table(&scen_e.value, "scenario")?;
    let scen_at = (scen_e.value.line, scen_e.value.col);
    let mut sd = Dec::new(scen_t, "scenario");
    let name = expect_str(&sd.req("name", scen_at)?.value, "name")?.to_string();
    let duration = dur_s(&sd.req("duration_s", scen_at)?.value, "duration_s")?;
    let base_seed = expect_u64(&sd.req("base_seed", scen_at)?.value, "base_seed")?;
    sd.finish()?;

    let topo_e = d.req("topology", at)?;
    let topology = decode_topology(
        expect_table(&topo_e.value, "topology")?,
        (topo_e.value.line, topo_e.value.col),
        base,
    )?;
    let prior_e = d.req("prior", at)?;
    let prior = decode_prior(
        expect_table(&prior_e.value, "prior")?,
        (prior_e.value.line, prior_e.value.col),
    )?;
    let sender_e = d.req("sender", at)?;
    let sender = decode_sender(
        expect_table(&sender_e.value, "sender")?,
        (sender_e.value.line, sender_e.value.col),
    )?;
    let workload_e = d.req("workload", at)?;
    let workload = decode_workload(
        expect_table(&workload_e.value, "workload")?,
        (workload_e.value.line, workload_e.value.col),
    )?;
    let observe = match d.get("observe") {
        Some(obs_e) => decode_observe(
            expect_table(&obs_e.value, "observe")?,
            (obs_e.value.line, obs_e.value.col),
        )?,
        None => ObserveSpec::default(),
    };

    let mut axes = Vec::new();
    if let Some(axis_e) = d.get("axis") {
        let tables = match &axis_e.value.payload {
            Payload::TableArray(tables) => tables,
            other => {
                return err(
                    axis_e.value.line,
                    axis_e.value.col,
                    format!(
                        "expected `[[axis]]` array of tables, found {}",
                        other.type_name()
                    ),
                )
            }
        };
        for t in tables {
            // Each [[axis]] table carries its own header position, so a
            // missing key in the third axis points at the third header.
            axes.push(decode_axis(t, (t.line, t.col), base)?);
        }
    }
    d.finish()?;

    // Cross-section validation the per-table decoders cannot see: only
    // TCP bulk transfers run over the cellular path (the ISender's
    // priors and the coexist/scripted harnesses all describe the model
    // family), and graph topologies drive exactly one agent per declared
    // flow, so reject bad combinations here rather than letting the
    // runner panic mid-sweep.
    match &topology {
        TopologySpec::Cellular { .. } => {
            let tcp_only = |s: &SenderSpec| {
                matches!(s, SenderSpec::TcpReno { .. } | SenderSpec::TcpCubic { .. })
            };
            if !tcp_only(&sender) {
                return err(
                    sender_e.value.line,
                    sender_e.value.col,
                    format!(
                        "sender kind `{}` cannot run over a cellular topology (only tcp-reno / \
                         tcp-cubic can)",
                        sender.label()
                    ),
                );
            }
            if !matches!(workload, WorkloadSpec::ClosedLoop) {
                return err(
                    workload_e.value.line,
                    workload_e.value.col,
                    "cellular topologies only support the closed-loop workload",
                );
            }
            for (axis, t) in axes.iter().zip(axis_tables(&root)) {
                if let Axis::Sender(senders) = axis {
                    if let Some(bad) = senders.iter().find(|s| !tcp_only(s)) {
                        return err(
                            t.line,
                            t.col,
                            format!(
                                "sender axis value `{}` cannot run over a cellular topology",
                                bad.label()
                            ),
                        );
                    }
                }
            }
        }
        TopologySpec::Graph(g) => {
            let exact = |s: &SenderSpec| matches!(s, SenderSpec::IsenderExact { .. });
            if !exact(&sender) {
                return err(
                    sender_e.value.line,
                    sender_e.value.col,
                    format!(
                        "sender kind `{}` cannot drive a graph topology's primary flow (the \
                         multi-flow harness needs an exact-belief isender)",
                        sender.label()
                    ),
                );
            }
            match &workload {
                WorkloadSpec::Coexist(cx) => {
                    if 1 + cx.peers.len() != g.flows.len() {
                        return err(
                            workload_e.value.line,
                            workload_e.value.col,
                            format!(
                                "graph topology declares {} flows but this workload drives {} \
                                 agents (primary + {} peers)",
                                g.flows.len(),
                                1 + cx.peers.len(),
                                cx.peers.len()
                            ),
                        );
                    }
                }
                _ => {
                    return err(
                        workload_e.value.line,
                        workload_e.value.col,
                        "graph topologies only support the coexist workload (one agent per \
                         declared flow)",
                    )
                }
            }
            for (axis, t) in axes.iter().zip(axis_tables(&root)) {
                match axis {
                    Axis::Sender(senders) => {
                        if let Some(bad) = senders.iter().find(|s| !exact(s)) {
                            return err(
                                t.line,
                                t.col,
                                format!(
                                    "sender axis value `{}` cannot drive a graph topology's \
                                     primary flow",
                                    bad.label()
                                ),
                            );
                        }
                    }
                    Axis::Peer(_) if g.flows.len() != 2 => {
                        return err(
                            t.line,
                            t.col,
                            format!(
                                "a peer axis replaces the peer list with one peer, but this \
                                 graph topology declares {} flows (needs exactly 2)",
                                g.flows.len()
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        TopologySpec::Model(_) => {}
    }
    for (axis, t) in axes.iter().zip(axis_tables(&root)) {
        // Axes that tweak a knob only one topology family has.
        let model_only = match axis {
            Axis::LinkRate(_) => Some("a link_bps axis"),
            Axis::CrossRate(_) => Some("a cross_bps axis"),
            Axis::BufferCapacity(_) => Some("a buffer_bits axis"),
            Axis::InitialFullness(_) => Some("a fullness_bits axis"),
            Axis::Loss(_) => Some("a loss_ppm axis"),
            _ => None,
        };
        if let Some(what) = model_only {
            if let Err(msg) = topology.try_model(what) {
                return err(t.line, t.col, msg);
            }
        }
        if matches!(axis, Axis::Flows(_)) && !matches!(workload, WorkloadSpec::ManyFlows(_)) {
            return err(
                t.line,
                t.col,
                "a flows axis requires the many-flows workload (it sets the flow count)",
            );
        }
        if !matches!(topology, TopologySpec::Cellular { .. }) {
            let cellular_only = match axis {
                Axis::RateTrace(_) => Some("rate-trace"),
                Axis::Queue(_) => Some("queue"),
                _ => None,
            };
            if let Some(kind) = cellular_only {
                return err(
                    t.line,
                    t.col,
                    format!(
                        "a {kind} axis requires a cellular topology (only its radio path has \
                         that knob)"
                    ),
                );
            }
        }
    }

    Ok(SweepGrid {
        base: ScenarioSpec {
            name,
            topology,
            prior,
            sender,
            workload,
            duration,
            base_seed,
            observe,
        },
        axes,
    })
}

/// The `[[axis]]` tables of a parsed document, for validation passes
/// that need each axis's source position after decoding.
fn axis_tables(root: &Table) -> impl Iterator<Item = &Table> {
    root.get("axis")
        .into_iter()
        .flat_map(|e| match &e.value.payload {
            Payload::TableArray(tables) => tables.iter().collect::<Vec<_>>(),
            _ => Vec::new(),
        })
}

/// [`parse_grid`] over a file, with relative trace paths resolved
/// against the spec file's directory. IO failures surface as a
/// position-less [`ConfigError`] so callers print one error shape
/// either way.
pub fn load_grid(path: &Path) -> Result<SweepGrid, ConfigError> {
    let src = std::fs::read_to_string(path).map_err(|e| ConfigError {
        line: 0,
        col: 0,
        message: format!("cannot read {}: {e}", path.display()),
    })?;
    parse_grid_at(&src, path.parent())
}

// ---------------------------------------------------------------------
// Canonical emission.
// ---------------------------------------------------------------------

/// Quote a string for emission, escaping exactly what the parser's
/// string scanner decodes (`\"`, `\\`, `\n`, `\t`) — scenario names and
/// trace file paths (where backslashes actually occur) must survive a
/// round trip instead of silently corrupting.
fn fmt_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Format a float so the parser reads back the same `f64` (Rust's
/// shortest round-trip formatting, with a `.0` forced onto integral
/// values so the value stays a TOML float).
///
/// # Panics
/// Panics on non-finite values — the schema has no NaN/inf literals, so
/// emitting one would produce a file the parser rejects.
pub(crate) fn fmt_f64(v: f64) -> String {
    assert!(v.is_finite(), "spec floats must be finite, got {v}");
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn fmt_dur(d: Dur) -> String {
    fmt_f64(d.as_secs_f64())
}

fn fmt_gate(g: &GateSpec) -> String {
    match g {
        GateSpec::AlwaysOn => "{ kind = \"always-on\" }".into(),
        GateSpec::SquareWave {
            half_period,
            initially_connected,
        } => format!(
            "{{ kind = \"square-wave\", half_period_s = {}, initially_connected = {} }}",
            fmt_dur(*half_period),
            initially_connected
        ),
        GateSpec::Intermittent {
            mtts,
            epoch,
            initially_connected,
        } => format!(
            "{{ kind = \"intermittent\", mtts_s = {}, epoch_s = {}, initially_connected = {} }}",
            fmt_dur(*mtts),
            fmt_dur(*epoch),
            initially_connected
        ),
    }
}

fn fmt_queue(q: &QueueSpec) -> String {
    match q {
        QueueSpec::DropTail => "{ kind = \"drop-tail\" }".into(),
        QueueSpec::Red {
            min_th,
            max_th,
            max_p,
            w_shift,
        } => format!(
            "{{ kind = \"red\", min_th_bits = {}, max_th_bits = {}, max_p_ppm = {}, w_shift = {} }}",
            min_th.as_u64(),
            max_th.as_u64(),
            max_p.as_u32(),
            w_shift
        ),
        QueueSpec::CoDel { target, interval } => format!(
            "{{ kind = \"codel\", target_s = {}, interval_s = {} }}",
            fmt_dur(*target),
            fmt_dur(*interval)
        ),
    }
}

fn fmt_rate(r: &RateProcess) -> String {
    match r {
        RateProcess::Const(bps) => format!("{{ kind = \"constant\", bps = {} }}", bps.as_bps()),
        RateProcess::Schedule { steps, period } => {
            let steps = steps
                .iter()
                .map(|(at, bps)| format!("{{ at_s = {}, bps = {} }}", fmt_dur(*at), bps.as_bps()))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{ kind = \"schedule\", period_s = {}, steps = [{steps}] }}",
                fmt_dur(*period)
            )
        }
        RateProcess::Trace { label, end, .. } => {
            format!("{{ kind = \"trace\", {} }}", fmt_trace_fields(label, *end))
        }
    }
}

/// A trace reference emits its file path, not its samples — the spec
/// file stays a reference into `experiments/traces/`, and parsing loads
/// the CSV back (the round-trip tests pin the equality).
fn fmt_trace_fields(label: &str, end: TraceEnd) -> String {
    format!("file = {}, end = \"{}\"", fmt_str(label), end.label())
}

fn fmt_sender(s: &SenderSpec) -> Vec<String> {
    match s {
        SenderSpec::IsenderExact {
            alpha,
            latency_penalty,
            max_branches,
        } => vec![
            "kind = \"isender-exact\"".into(),
            format!("alpha = {}", fmt_f64(*alpha)),
            format!("latency_penalty = {}", fmt_f64(*latency_penalty)),
            format!("max_branches = {max_branches}"),
        ],
        SenderSpec::IsenderParticle {
            alpha,
            latency_penalty,
            n_particles,
        } => vec![
            "kind = \"isender-particle\"".into(),
            format!("alpha = {}", fmt_f64(*alpha)),
            format!("latency_penalty = {}", fmt_f64(*latency_penalty)),
            format!("n_particles = {n_particles}"),
        ],
        SenderSpec::TcpReno { max_window } => vec![
            "kind = \"tcp-reno\"".into(),
            format!("max_window = {max_window}"),
        ],
        SenderSpec::TcpCubic { max_window } => vec![
            "kind = \"tcp-cubic\"".into(),
            format!("max_window = {max_window}"),
        ],
    }
}

fn fmt_sender_inline(s: &SenderSpec) -> String {
    format!("{{ {} }}", fmt_sender(s).join(", "))
}

fn fmt_peer(p: &PeerSpec) -> String {
    match p {
        PeerSpec::Isender { alpha } => {
            format!("{{ kind = \"isender\", alpha = {} }}", fmt_f64(*alpha))
        }
        PeerSpec::Aimd { timeout } => {
            format!("{{ kind = \"aimd\", timeout_s = {} }}", fmt_dur(*timeout))
        }
        PeerSpec::TcpReno { max_window } => {
            format!("{{ kind = \"tcp-reno\", max_window = {max_window} }}")
        }
        PeerSpec::TcpCubic { max_window } => {
            format!("{{ kind = \"tcp-cubic\", max_window = {max_window} }}")
        }
    }
}

fn fmt_int_list<I: IntoIterator<Item = u64>>(items: I) -> String {
    let body = items
        .into_iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!("[{body}]")
}

fn push_axis(out: &mut String, axis: &Axis) {
    out.push_str("\n[[axis]]\n");
    let (kind, values) = match axis {
        Axis::Alpha(v) => (
            "alpha",
            Some(format!(
                "[{}]",
                v.iter().map(|x| fmt_f64(*x)).collect::<Vec<_>>().join(", ")
            )),
        ),
        Axis::LatencyPenalty(v) => (
            "latency-penalty",
            Some(format!(
                "[{}]",
                v.iter().map(|x| fmt_f64(*x)).collect::<Vec<_>>().join(", ")
            )),
        ),
        Axis::LinkRate(v) => (
            "link-rate",
            Some(fmt_int_list(v.iter().map(|r| r.as_bps()))),
        ),
        Axis::CrossRate(v) => (
            "cross-rate",
            Some(fmt_int_list(v.iter().map(|r| r.as_bps()))),
        ),
        Axis::BufferCapacity(v) => (
            "buffer-capacity",
            Some(fmt_int_list(v.iter().map(|b| b.as_u64()))),
        ),
        Axis::InitialFullness(v) => (
            "initial-fullness",
            Some(fmt_int_list(v.iter().map(|b| b.as_u64()))),
        ),
        Axis::Loss(v) => (
            "loss",
            Some(fmt_int_list(v.iter().map(|p| p.as_u32() as u64))),
        ),
        Axis::Sender(v) => (
            "sender",
            Some(format!(
                "[\n{}\n]",
                v.iter()
                    .map(|s| format!("  {},", fmt_sender_inline(s)))
                    .collect::<Vec<_>>()
                    .join("\n")
            )),
        ),
        Axis::Peer(v) => (
            "peer",
            Some(format!(
                "[\n{}\n]",
                v.iter()
                    .map(|p| format!("  {},", fmt_peer(p)))
                    .collect::<Vec<_>>()
                    .join("\n")
            )),
        ),
        Axis::Queue(v) => (
            "queue",
            Some(format!(
                "[\n{}\n]",
                v.iter()
                    .map(|q| format!("  {},", fmt_queue(q)))
                    .collect::<Vec<_>>()
                    .join("\n")
            )),
        ),
        Axis::RateTrace(v) => (
            "rate-trace",
            Some(format!(
                "[\n{}\n]",
                v.iter()
                    .map(|r| match r {
                        RateProcess::Trace { label, end, .. } =>
                            format!("  {{ {} }},", fmt_trace_fields(label, *end)),
                        other => unreachable!("rate-trace axis over {other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            )),
        ),
        Axis::PriorSize(v) => (
            "prior-size",
            Some(fmt_int_list(v.iter().map(|n| *n as u64))),
        ),
        Axis::Flows(v) => ("flows", Some(fmt_int_list(v.iter().map(|n| *n as u64)))),
        Axis::Seeds(k) => {
            let _ = writeln!(out, "kind = \"seeds\"\ncount = {k}");
            return;
        }
    };
    let _ = writeln!(out, "kind = \"{kind}\"");
    if let Some(values) = values {
        let _ = writeln!(out, "values = {values}");
    }
}

/// Emit the canonical spec file for a grid. `parse_grid` reads the
/// result back to an identical grid — pinned per preset by the
/// round-trip tests.
pub fn grid_to_toml(grid: &SweepGrid) -> String {
    let base = &grid.base;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Scenario spec for `sweep --spec` (canonical form; regenerate with\n\
         # `sweep --export-specs <dir>`).\n\
         \n\
         [scenario]\n\
         name = {}\n\
         duration_s = {}\n\
         base_seed = 0x{:X}",
        fmt_str(&base.name),
        fmt_dur(base.duration),
        base.base_seed
    );

    out.push_str("\n[topology]\n");
    match &base.topology {
        TopologySpec::Model(m) => {
            let _ = writeln!(
                out,
                "kind = \"model\"\n\
                 link_bps = {}\n\
                 cross_bps = {}\n\
                 cross_active = {}\n\
                 gate = {}\n\
                 loss_ppm = {}\n\
                 buffer_bits = {}\n\
                 initial_fullness_bits = {}\n\
                 packet_bits = {}",
                m.link_rate.as_bps(),
                m.cross_rate.as_bps(),
                m.cross_active,
                fmt_gate(&m.gate),
                m.loss.as_u32(),
                m.buffer_capacity.as_u64(),
                m.initial_fullness.as_u64(),
                m.packet_size.as_u64(),
            );
        }
        TopologySpec::Cellular { params, queue } => {
            let _ = writeln!(
                out,
                "kind = \"cellular\"\n\
                 buffer_bits = {}\n\
                 rate = {}\n\
                 arq_loss_ppm = {}\n\
                 arq_retry_delay_s = {}\n\
                 propagation_s = {}\n\
                 queue = {}",
                params.buffer_capacity.as_u64(),
                fmt_rate(&params.rate),
                params.arq_loss.as_u32(),
                fmt_dur(params.arq_retry_delay),
                fmt_dur(params.propagation),
                fmt_queue(queue),
            );
        }
        TopologySpec::Graph(g) => {
            let _ = writeln!(
                out,
                "kind = \"graph\"\npacket_bits = {}\nnodes = [{}]",
                g.packet_size.as_u64(),
                g.nodes
                    .iter()
                    .map(|n| fmt_str(n))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push_str("links = [\n");
            for l in &g.links {
                let _ = write!(
                    out,
                    "  {{ name = {}, from = {}, to = {}, bps = {}, delay_s = {}, \
                     buffer_bits = {}",
                    fmt_str(&l.name),
                    fmt_str(&l.from),
                    fmt_str(&l.to),
                    l.rate.as_bps(),
                    fmt_dur(l.delay),
                    l.buffer.as_u64(),
                );
                // Drop-tail is the decode-side default; emitting it
                // anyway would only widen the lines.
                if l.queue != QueueSpec::DropTail {
                    let _ = write!(out, ", queue = {}", fmt_queue(&l.queue));
                }
                out.push_str(" },\n");
            }
            out.push_str("]\nflows = [\n");
            for f in &g.flows {
                let _ = write!(
                    out,
                    "  {{ name = {}, class = {}, src = {}, dst = {}",
                    fmt_str(&f.name),
                    fmt_str(&f.class),
                    fmt_str(&f.src),
                    fmt_str(&f.dst),
                );
                if let Some(path) = &f.path {
                    let _ = write!(
                        out,
                        ", path = [{}]",
                        path.iter()
                            .map(|n| fmt_str(n))
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
                out.push_str(" },\n");
            }
            out.push_str("]\n");
        }
    }

    out.push_str("\n[prior]\n");
    match &base.prior {
        PriorSpec::Paper => out.push_str("kind = \"paper\"\n"),
        PriorSpec::Small => out.push_str("kind = \"small\"\n"),
        PriorSpec::FineLinkRate { n, lo_bps, hi_bps } => {
            let _ = writeln!(
                out,
                "kind = \"fine-link-rate\"\nn = {n}\nlo_bps = {lo_bps}\nhi_bps = {hi_bps}"
            );
        }
        PriorSpec::Custom(p) => {
            let _ = writeln!(
                out,
                "kind = \"custom\"\n\
                 link_rates_bps = {}\n\
                 cross_fracs_ppm = {}\n\
                 losses_ppm = {}\n\
                 buffer_capacities_bits = {}",
                fmt_int_list(p.link_rates.iter().map(|r| r.as_bps())),
                fmt_int_list(p.cross_fracs_ppm.iter().map(|f| *f as u64)),
                fmt_int_list(p.losses.iter().map(|l| l.as_u32() as u64)),
                fmt_int_list(p.buffer_capacities.iter().map(|b| b.as_u64())),
            );
            if let Some(step) = p.fullness_step {
                let _ = writeln!(out, "fullness_step_bits = {}", step.as_u64());
            }
            let _ = writeln!(
                out,
                "mtts_s = {}\n\
                 epoch_s = {}\n\
                 gate_initial = [{}]\n\
                 packet_bits = {}\n\
                 cross_active = {}",
                fmt_dur(p.mtts),
                fmt_dur(p.epoch),
                p.gate_initial
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                p.packet_size.as_u64(),
                p.cross_active,
            );
        }
    }

    out.push_str("\n[sender]\n");
    for line in fmt_sender(&base.sender) {
        out.push_str(&line);
        out.push('\n');
    }

    out.push_str("\n[workload]\n");
    match &base.workload {
        WorkloadSpec::ClosedLoop => out.push_str("kind = \"closed-loop\"\n"),
        WorkloadSpec::ScriptedPing { interval } => {
            let _ = writeln!(
                out,
                "kind = \"scripted-ping\"\ninterval_s = {}",
                fmt_dur(*interval)
            );
        }
        WorkloadSpec::ManyFlows(mf) => {
            let _ = writeln!(
                out,
                "kind = \"many-flows\"\nflows = {}\nmix = [\n{}\n]",
                mf.flows,
                mf.mix
                    .iter()
                    .map(|p| format!("  {},", fmt_peer(p)))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        WorkloadSpec::Coexist(cx) => {
            let _ = writeln!(
                out,
                "kind = \"coexist\"\npeers = [\n{}\n]",
                cx.peers
                    .iter()
                    .map(|p| format!("  {},", fmt_peer(p)))
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    // Default-off observability stays implicit, so shipped spec files
    // are byte-stable across the introduction of the `[observe]` table.
    if base.observe.active() {
        out.push_str("\n[observe]\n");
        if base.observe.trace_events {
            out.push_str("trace_events = true\n");
        }
        if let Some(every) = base.observe.snapshot_every {
            let _ = writeln!(out, "snapshot_every_s = {}", fmt_dur(every));
        }
    }

    for axis in &grid.axes {
        push_axis(&mut out, axis);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// Grid equality via the Debug form — every spec type is Debug, and
    /// the derived representation covers exactly the fields the decoder
    /// must reproduce.
    fn assert_grid_eq(a: &SweepGrid, b: &SweepGrid) {
        assert_eq!(format!("{a:#?}"), format!("{b:#?}"));
    }

    /// Where the shipped spec files live — trace references in canonical
    /// emissions are relative to this directory, so parsing them back
    /// needs it as the base (and doubles as a pin that the committed
    /// trace CSVs match the generators the presets embed).
    fn shipped_specs_dir() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments/specs")
    }

    #[test]
    fn every_preset_round_trips_through_toml() {
        for name in presets::NAMES {
            let grid = presets::by_name(name).unwrap();
            let toml = grid_to_toml(&grid);
            let parsed = parse_grid_at(&toml, Some(&shipped_specs_dir()))
                .unwrap_or_else(|e| panic!("canonical {name} spec failed to parse: {e}\n{toml}"));
            assert_grid_eq(&grid, &parsed);
        }
    }

    #[test]
    fn observe_round_trips_and_defaults_off() {
        // Default-off: no preset emits an [observe] table, so shipped
        // spec files are byte-stable against the observability layer.
        let grid = presets::by_name("fig3").unwrap();
        let toml = grid_to_toml(&grid);
        assert!(!toml.contains("[observe]"), "default spec grew [observe]");
        // Armed: both keys survive the round trip.
        let mut armed = grid;
        armed.base.observe = crate::spec::ObserveSpec {
            trace_events: true,
            snapshot_every: Some(Dur::from_secs_f64(2.5)),
        };
        let toml = grid_to_toml(&armed);
        assert!(toml.contains("[observe]\ntrace_events = true\nsnapshot_every_s = 2.5\n"));
        let parsed = parse_grid_at(&toml, Some(&shipped_specs_dir())).unwrap();
        assert_grid_eq(&armed, &parsed);
        // Each key also round-trips alone.
        armed.base.observe.snapshot_every = None;
        let parsed = parse_grid_at(&grid_to_toml(&armed), Some(&shipped_specs_dir())).unwrap();
        assert_grid_eq(&armed, &parsed);
    }

    #[test]
    fn observe_zero_cadence_is_rejected() {
        let toml = format!(
            "{}\n[observe]\nsnapshot_every_s = 0.0\n",
            grid_to_toml(&presets::by_name("fig3").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("`snapshot_every_s` must be > 0 seconds"),
            "got: {e}"
        );
    }

    #[test]
    fn observe_unknown_key_is_rejected() {
        let toml = format!(
            "{}\n[observe]\nsnapshots = true\n",
            grid_to_toml(&presets::by_name("fig3").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("unknown key `snapshots` in [observe]"),
            "got: {e}"
        );
    }

    #[test]
    fn parser_reads_positions_comments_and_hex() {
        let src =
            "# comment\n[scenario]\nname = \"x\" # trailing\nbase_seed = 0xF13\nduration_s = 1.5\n";
        let root = Parser::new(src).parse_document().unwrap();
        let scen = match &root.get("scenario").unwrap().value.payload {
            Payload::Table(t) => t,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            scen.get("base_seed").unwrap().value.payload,
            Payload::Int(0xF13)
        ));
        let name = scen.get("name").unwrap();
        assert_eq!((name.line, name.col), (3, 1));
    }

    #[test]
    fn unknown_key_is_located_and_named() {
        let grid = presets::by_name("fig3").unwrap();
        let toml = grid_to_toml(&grid).replace("alpha = 1.0", "alpha = 1.0\nalpa = 1.0");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("unknown key `alpa` in [sender]"),
            "got: {e}"
        );
        assert!(e.line > 0);
    }

    #[test]
    fn type_mismatch_names_the_expected_type() {
        let toml = grid_to_toml(&presets::by_name("fig3").unwrap())
            .replace("values = [0.9, 1.0, 2.5, 5.0]", "values = [0.9, \"high\"]");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("expected float for `values[1]`, found string"),
            "got: {e}"
        );
    }

    #[test]
    fn many_flows_flow_count_is_range_checked() {
        let toml = grid_to_toml(&presets::by_name("ext-scaling-flows").unwrap())
            .replace("flows = 10\n", "flows = 0\n");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("`flows` must be between 1 and 65536 (wire flow ids are u16), got 0"),
            "got: {e}"
        );
    }

    #[test]
    fn many_flows_mix_rejects_belief_carrying_agents() {
        let toml = grid_to_toml(&presets::by_name("ext-scaling-flows").unwrap()).replace(
            "{ kind = \"aimd\", timeout_s = 8.0 }",
            "{ kind = \"isender\", alpha = 1.0 }",
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("`mix` agents must be belief-free"),
            "got: {e}"
        );
    }

    #[test]
    fn flows_axis_requires_the_many_flows_workload() {
        let toml = format!(
            "{}\n[[axis]]\nkind = \"flows\"\nvalues = [10]\n",
            grid_to_toml(&presets::by_name("fig3").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("a flows axis requires the many-flows workload"),
            "got: {e}"
        );
    }

    #[test]
    fn flows_axis_values_are_range_checked() {
        let toml = grid_to_toml(&presets::by_name("ext-scaling-flows").unwrap())
            .replace("values = [10, 100, 1000, 10000]", "values = [10, 70000]");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("flow counts must be between 1 and 65536, got 70000"),
            "got: {e}"
        );
    }

    #[test]
    fn duplicate_table_is_rejected() {
        let toml = format!(
            "{}\n[sender]\nkind = \"tcp-reno\"\nmax_window = 4\n",
            grid_to_toml(&presets::by_name("fig3").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("duplicate table [sender]"), "got: {e}");
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let src = "[scenario]\nname = \"a\"\nname = \"b\"\n";
        let e = parse_grid(src).unwrap_err();
        assert!(e.message.contains("duplicate key `name`"), "got: {e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn missing_section_is_reported() {
        let e =
            parse_grid("[scenario]\nname = \"x\"\nduration_s = 1.0\nbase_seed = 1\n").unwrap_err();
        assert!(e.message.contains("missing key `topology`"), "got: {e}");
    }

    #[test]
    fn unknown_axis_kind_lists_the_menu() {
        let toml = format!(
            "{}\n[[axis]]\nkind = \"warp\"\nvalues = [1]\n",
            grid_to_toml(&presets::by_name("smoke").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("unknown axis kind `warp`"), "got: {e}");
    }

    #[test]
    fn three_peer_coexist_spec_parses() {
        let toml = grid_to_toml(&presets::by_name("coexist-fairness").unwrap()).replace(
            "peers = [\n  { kind = \"isender\", alpha = 1.0 },\n]",
            "peers = [\n  { kind = \"isender\", alpha = 1.0 },\n  { kind = \"aimd\", timeout_s = 8.0 },\n  { kind = \"tcp-reno\", max_window = 64 },\n]",
        );
        let grid = parse_grid(&toml).unwrap();
        match &grid.base.workload {
            WorkloadSpec::Coexist(cx) => {
                assert_eq!(cx.peers.len(), 3);
                assert_eq!(cx.label(), "isender+aimd+tcp-reno");
            }
            other => panic!("unexpected workload {other:?}"),
        }
    }

    #[test]
    fn isender_over_cellular_is_rejected_at_parse_time() {
        // Splice fig1's cellular topology into fig3's ISender spec: the
        // runner could only panic on this, so --check must reject it.
        let fig3 = grid_to_toml(&presets::by_name("fig3").unwrap());
        let fig1 = grid_to_toml(&presets::by_name("fig1").unwrap());
        let cut = |src: &str, header: &str| -> String {
            let start = src.find(header).unwrap();
            let end = src[start + header.len()..]
                .find("\n[")
                .map(|i| start + header.len() + i)
                .unwrap_or(src.len());
            src[start..end].to_string()
        };
        let spliced = fig3.replace(&cut(&fig3, "[topology]"), &cut(&fig1, "[topology]"));
        let e = parse_grid(&spliced).unwrap_err();
        assert!(
            e.message
                .contains("`isender-exact` cannot run over a cellular topology"),
            "got: {e}"
        );
    }

    /// A two-flow line graph (a → b → c) for the graph decode tests,
    /// with splice points for the flow list, workload, and a trailing
    /// axis.
    fn graph_spec(flows: &str, workload: &str, extra: &str) -> String {
        format!(
            "[scenario]\n\
             name = \"g\"\n\
             duration_s = 1.0\n\
             base_seed = 1\n\
             \n\
             [topology]\n\
             kind = \"graph\"\n\
             packet_bits = 12000\n\
             nodes = [\"a\", \"b\", \"c\"]\n\
             links = [\n\
             \x20 {{ name = \"ab\", from = \"a\", to = \"b\", bps = 24000, delay_s = 0.0, buffer_bits = 96000 }},\n\
             \x20 {{ name = \"ba\", from = \"b\", to = \"a\", bps = 24000, delay_s = 0.0, buffer_bits = 96000 }},\n\
             \x20 {{ name = \"bc\", from = \"b\", to = \"c\", bps = 24000, delay_s = 0.0, buffer_bits = 96000 }},\n\
             ]\n\
             flows = [\n{flows}\n]\n\
             \n\
             [prior]\n\
             kind = \"small\"\n\
             \n\
             [sender]\n\
             kind = \"isender-exact\"\n\
             alpha = 1.0\n\
             latency_penalty = 0.0\n\
             max_branches = 100\n\
             \n\
             [workload]\n{workload}\n{extra}"
        )
    }

    const LINE_FLOWS: &str =
        "  { name = \"f0\", class = \"primary\", src = \"a\", dst = \"c\" },\n\
                              \x20 { name = \"f1\", class = \"cross\", src = \"b\", dst = \"c\" },";
    const ONE_PEER: &str =
        "kind = \"coexist\"\npeers = [\n  { kind = \"aimd\", timeout_s = 8.0 },\n]";

    #[test]
    fn graph_spec_parses_and_round_trips() {
        let grid = parse_grid(&graph_spec(LINE_FLOWS, ONE_PEER, "")).unwrap();
        assert!(matches!(grid.base.topology, TopologySpec::Graph(_)));
        assert_grid_eq(&grid, &parse_grid(&grid_to_toml(&grid)).unwrap());
    }

    #[test]
    fn graph_unreachable_destination_names_the_flow() {
        // No link leaves c, so c → a cannot route.
        let flows = LINE_FLOWS.replace("src = \"b\", dst = \"c\"", "src = \"c\", dst = \"a\"");
        let e = parse_grid(&graph_spec(&flows, ONE_PEER, "")).unwrap_err();
        assert!(
            e.message
                .contains("flow \"f1\": destination \"a\" is unreachable from \"c\""),
            "got: {e}"
        );
        assert!(e.line > 0, "topology errors carry a position");
    }

    #[test]
    fn graph_routing_cycle_names_the_flow_and_node() {
        // An explicit path that revisits a node is a routing cycle, not
        // a runtime assert in Network::route.
        let flows = LINE_FLOWS.replace(
            "{ name = \"f0\", class = \"primary\", src = \"a\", dst = \"c\" }",
            "{ name = \"f0\", class = \"primary\", src = \"a\", dst = \"c\", \
             path = [\"a\", \"b\", \"a\", \"b\", \"c\"] }",
        );
        let e = parse_grid(&graph_spec(&flows, ONE_PEER, "")).unwrap_err();
        assert!(
            e.message
                .contains("routing cycle: flow \"f0\" visits node \"a\" twice"),
            "got: {e}"
        );
    }

    #[test]
    fn graph_flow_count_must_match_the_agent_count() {
        let peers = ONE_PEER.replace(
            "peers = [\n  { kind = \"aimd\", timeout_s = 8.0 },",
            "peers = [\n  { kind = \"aimd\", timeout_s = 8.0 },\n\
             \x20 { kind = \"aimd\", timeout_s = 8.0 },",
        );
        let e = parse_grid(&graph_spec(LINE_FLOWS, &peers, "")).unwrap_err();
        assert!(
            e.message
                .contains("declares 2 flows but this workload drives 3 agents"),
            "got: {e}"
        );
    }

    #[test]
    fn graph_rejects_non_coexist_workloads() {
        let e = parse_grid(&graph_spec(
            LINE_FLOWS,
            "kind = \"scripted-ping\"\ninterval_s = 1.0",
            "",
        ))
        .unwrap_err();
        assert!(
            e.message
                .contains("graph topologies only support the coexist workload"),
            "got: {e}"
        );
    }

    #[test]
    fn model_only_axis_over_graph_is_rejected_at_decode_time() {
        // Pre-`try_model` this panicked inside `Axis::apply` mid-sweep;
        // now it is a positioned spec error at --check time.
        let e = parse_grid(&graph_spec(
            LINE_FLOWS,
            ONE_PEER,
            "\n[[axis]]\nkind = \"link-rate\"\nvalues = [24000, 48000]\n",
        ))
        .unwrap_err();
        assert!(
            e.message
                .contains("a link_bps axis requires a model topology, got graph"),
            "got: {e}"
        );
    }

    /// The canonical fig1 spec with its schedule's `steps` list replaced
    /// — the vehicle for the malformed-schedule decode tests.
    fn fig1_with_steps(steps: &str) -> String {
        let toml = grid_to_toml(&presets::by_name("fig1").unwrap());
        let start = toml.find("steps = [").expect("fig1 has a schedule");
        let end = toml[start..].find(']').map(|i| start + i + 1).unwrap();
        format!("{}{}{}", &toml[..start], steps, &toml[end..])
    }

    #[test]
    fn unsorted_schedule_offsets_are_rejected_at_decode_time() {
        // Before this check lived in the decoder, `--check` accepted the
        // file and the run panicked inside `Link::new`.
        let toml = fig1_with_steps(
            "steps = [{ at_s = 0.0, bps = 1000 }, { at_s = 9.0, bps = 2000 }, \
             { at_s = 4.0, bps = 3000 }]",
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("strictly increasing"), "got: {e}");
        assert!(e.line > 0 && e.col > 0);
    }

    #[test]
    fn schedule_first_step_must_be_at_zero() {
        let toml = fig1_with_steps("steps = [{ at_s = 1.0, bps = 1000 }]");
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("`at_s = 0`"), "got: {e}");
    }

    #[test]
    fn schedule_zero_period_is_rejected_at_decode_time() {
        let toml = grid_to_toml(&presets::by_name("fig1").unwrap())
            .replace("period_s = 20.0", "period_s = 0.0");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("`period_s` must be positive"),
            "got: {e}"
        );
        assert!(e.line > 0 && e.col > 0);
    }

    #[test]
    fn schedule_offset_past_period_is_rejected() {
        let toml =
            fig1_with_steps("steps = [{ at_s = 0.0, bps = 1000 }, { at_s = 20.0, bps = 2000 }]");
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("does not fit in the period"), "got: {e}");
    }

    #[test]
    fn zero_rate_is_rejected_not_a_panic() {
        let toml = fig1_with_steps("steps = [{ at_s = 0.0, bps = 0 }]");
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("`bps` must be positive"), "got: {e}");
    }

    #[test]
    fn zero_rate_axis_value_is_rejected_not_a_panic() {
        // Every BitRate decode path must reject zero with a position —
        // `BitRate::from_bps(0)` would otherwise panic inside `--check`.
        let toml = format!(
            "{}\n[[axis]]\nkind = \"link-rate\"\nvalues = [0]\n",
            grid_to_toml(&presets::by_name("smoke").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("`values[0]` must be positive"),
            "got: {e}"
        );
    }

    #[test]
    fn inverted_fine_link_rate_range_is_rejected_at_decode_time() {
        // Before this check, `--check` passed and PriorSpec::hypotheses
        // hit a u64 subtract-overflow mid-run.
        let toml = grid_to_toml(&presets::by_name("scaling").unwrap())
            .replace("lo_bps = 8000", "lo_bps = 32000");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("`lo_bps` (32000) must not exceed `hi_bps` (16000)"),
            "got: {e}"
        );
        assert!(e.line > 0 && e.col > 0);
    }

    #[test]
    fn zero_hypothesis_fine_prior_is_rejected_at_decode_time() {
        let toml = grid_to_toml(&presets::by_name("scaling").unwrap()).replace("n = 101", "n = 0");
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("`n` must be at least 1"), "got: {e}");
    }

    #[test]
    fn missing_trace_file_is_a_positioned_error() {
        let toml = grid_to_toml(&presets::by_name("fig1").unwrap()).replace(
            "rate = { kind = \"schedule\", period_s = 20.0, steps = [{ at_s = 0.0, bps = 4000000 }, { at_s = 8.0, bps = 1000000 }, { at_s = 14.0, bps = 250000 }, { at_s = 17.0, bps = 2000000 }] }",
            "rate = { kind = \"trace\", file = \"no-such-trace.csv\", end = \"loop\" }",
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("cannot read trace file"), "got: {e}");
        assert!(e.line > 0 && e.col > 0);
    }

    #[test]
    fn unknown_trace_end_policy_lists_the_menu() {
        let toml = grid_to_toml(&presets::by_name("replay-cellular").unwrap())
            .replace("end = \"loop\" }\narq", "end = \"wrap\" }\narq");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("unknown trace end policy `wrap` (expected loop, hold-last)"),
            "got: {e}"
        );
    }

    #[test]
    fn queue_axis_over_model_topology_is_rejected_with_a_position() {
        let toml = format!(
            "{}\n[[axis]]\nkind = \"queue\"\nvalues = [\n  {{ kind = \"drop-tail\" }},\n]\n",
            grid_to_toml(&presets::by_name("fig3").unwrap())
        );
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message
                .contains("a queue axis requires a cellular topology"),
            "got: {e}"
        );
    }

    #[test]
    fn rate_trace_axis_over_model_topology_is_rejected() {
        // The axis's trace file must load before the cross-section check
        // fires, so give it a real (if tiny) trace to read.
        let dir = std::env::temp_dir().join("augur-rate-trace-axis-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.csv"), "time_s,bps\n0.0,1000\n1.0,2000\n").unwrap();
        let toml = format!(
            "{}\n[[axis]]\nkind = \"rate-trace\"\nvalues = [\n  {{ file = \"x.csv\", end = \"loop\" }},\n]\n",
            grid_to_toml(&presets::by_name("fig3").unwrap())
        );
        let e = parse_grid_at(&toml, Some(&dir)).unwrap_err();
        assert!(
            e.message
                .contains("rate-trace axis requires a cellular topology"),
            "got: {e}"
        );
    }

    #[test]
    fn out_of_range_u32_is_an_error_not_a_wrap() {
        // 2^32 + 200000: a wrap would silently yield a valid-looking
        // 200000 ppm loss rate.
        let toml = grid_to_toml(&presets::by_name("fig3").unwrap())
            .replace("loss_ppm = 200000", "loss_ppm = 4295167296");
        let e = parse_grid(&toml).unwrap_err();
        assert!(
            e.message.contains("`loss_ppm` must fit in a u32"),
            "got: {e}"
        );
    }

    #[test]
    fn full_u64_seed_space_round_trips() {
        let mut grid = presets::by_name("smoke").unwrap();
        grid.base.base_seed = 0x9E37_79B9_7F4A_7C15; // >= 2^63
        let parsed = parse_grid(&grid_to_toml(&grid)).unwrap();
        assert_eq!(parsed.base.base_seed, 0x9E37_79B9_7F4A_7C15);
    }

    #[test]
    fn non_ascii_strings_survive_the_byte_scanner() {
        let mut grid = presets::by_name("smoke").unwrap();
        grid.base.name = "café-β".into();
        let parsed = parse_grid(&grid_to_toml(&grid)).unwrap();
        assert_eq!(parsed.base.name, "café-β");
    }

    #[test]
    fn quotes_and_backslashes_are_escaped_on_emission() {
        // Backslashes occur in Windows-style trace paths; unescaped
        // emission would silently decode `\t` as a tab on re-parse.
        let mut grid = presets::by_name("smoke").unwrap();
        grid.base.name = "a\\tb \"q\"".into();
        let parsed = parse_grid(&grid_to_toml(&grid)).unwrap();
        assert_eq!(parsed.base.name, "a\\tb \"q\"");
    }

    #[test]
    fn duplicate_trace_stems_in_an_axis_are_rejected() {
        // Same stem from different directories would collapse to one
        // sweep coordinate.
        let dir = std::env::temp_dir().join("augur-dup-stem-test");
        for sub in ["a", "b"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
            std::fs::write(
                dir.join(sub).join("x.csv"),
                "time_s,bps\n0.0,1000\n1.0,2000\n",
            )
            .unwrap();
        }
        let toml = format!(
            "{}\n[[axis]]\nkind = \"rate-trace\"\nvalues = [\n  {{ file = \"a/x.csv\", end = \"loop\" }},\n  {{ file = \"b/x.csv\", end = \"loop\" }},\n]\n",
            grid_to_toml(&presets::by_name("fig1").unwrap())
        );
        let e = parse_grid_at(&toml, Some(&dir)).unwrap_err();
        assert!(
            e.message.contains("distinct file stems (`x` repeats)"),
            "got: {e}"
        );
    }

    #[test]
    fn errors_in_a_later_axis_point_at_that_axis() {
        let base = grid_to_toml(&presets::by_name("fig3").unwrap());
        let appended_header_line = base.lines().count() as u32 + 2; // blank line, then [[axis]]
        let toml = format!("{base}\n[[axis]]\nkind = \"seeds\"\n");
        let e = parse_grid(&toml).unwrap_err();
        assert!(e.message.contains("missing key `count`"), "got: {e}");
        assert_eq!(
            e.line, appended_header_line,
            "error should point at the second [[axis]] header, got: {e}"
        );
    }
}
