//! The paper's sweeps as one-line grid declarations — shared by the
//! generic `sweep` CLI and the per-figure experiment binaries.

use crate::grid::{Axis, SweepGrid};
use crate::spec::{
    CoexistSpec, ManyFlowSpec, ObserveSpec, PeerSpec, PriorSpec, QueueSpec, ScenarioSpec,
    SenderSpec, TopologySpec, WorkloadSpec,
};
use crate::traces;
use augur_elements::{CellularParams, GateSpec, ModelParams, RateProcess, TraceEnd};
use augur_inference::ModelPrior;
use augur_sim::{BitRate, Bits, Dur, Ppm};
use augur_topo::GraphTopology;

/// Every named preset, in the order `--export-specs` writes them. Each
/// name doubles as the canonical spec file stem under
/// `experiments/specs/` and the default CSV stem under `experiments/`.
pub const NAMES: [&str; 14] = [
    "fig1",
    "fig3",
    "tab1",
    "txt1",
    "txt2",
    "scaling",
    "smoke",
    "coexist-fairness",
    "coexist-vs-tcp",
    "ext-aqm",
    "replay-cellular",
    "dumbbell-cross",
    "parking-lot",
    "ext-scaling-flows",
];

/// The canonical grid for a preset name, at the documented default
/// durations/budgets (what `sweep <name>` runs with no overrides, and
/// what the shipped spec files under `experiments/specs/` encode).
pub fn by_name(name: &str) -> Option<SweepGrid> {
    Some(match name {
        "fig1" => fig1(Dur::from_secs(250)),
        "fig3" => fig3(Dur::from_secs(300), 50_000),
        "tab1" => tab1(Dur::from_secs(120), 50_000),
        "txt1" => txt1(Dur::from_secs(90)),
        "txt2" => txt2(Dur::from_secs(120)),
        "scaling" => ext_scaling(vec![101, 1_001, 10_001], 1_000),
        "smoke" => smoke(Dur::from_secs(20), 4),
        "coexist-fairness" => coexist_fairness(Dur::from_secs(60), 4, 50_000),
        "coexist-vs-tcp" => coexist_vs_tcp(Dur::from_secs(60), 2, 50_000),
        "ext-aqm" => ext_aqm(Dur::from_secs(120)),
        "replay-cellular" => replay_cellular(Dur::from_secs(60)),
        "dumbbell-cross" => dumbbell_cross(Dur::from_secs(60), 4, 50_000),
        "parking-lot" => parking_lot(Dur::from_secs(60), 4, 50_000),
        "ext-scaling-flows" => ext_scaling_flows(Dur::from_secs(20), 2),
        _ => return None,
    })
}

/// The shared base of the coexistence presets: a 24 kbit/s bottleneck
/// with a 96 kbit drop-tail buffer, an α = 1 exact ISender as flow A,
/// and the given peer as flow B. The primary's prior is the dedicated
/// coexistence prior (derived from the topology), so `prior` here is
/// inert.
fn coexist_base(
    name: &str,
    peer: PeerSpec,
    duration: Dur,
    max_branches: usize,
    base_seed: u64,
) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        topology: TopologySpec::Model(ModelParams::simple_link(
            BitRate::from_bps(24_000),
            Bits::new(96_000),
        )),
        prior: PriorSpec::Small,
        sender: SenderSpec::IsenderExact {
            alpha: 1.0,
            latency_penalty: 0.0,
            max_branches,
        },
        workload: WorkloadSpec::Coexist(CoexistSpec::with_peer(peer)),
        duration,
        base_seed,
        observe: ObserveSpec::default(),
    }
}

/// EXT-A (§3.5's first open question): two ISenders, same prior and
/// α = 1 utility, sharing one bottleneck — per-flow throughput, Jain
/// index, and belief-restart counts across seed replicates.
pub fn coexist_fairness(duration: Dur, replicates: usize, max_branches: usize) -> SweepGrid {
    let base = coexist_base(
        "coexist-fairness",
        PeerSpec::Isender { alpha: 1.0 },
        duration,
        max_branches,
        0xFA1,
    );
    SweepGrid::new(base).axis(Axis::Seeds(replicates))
}

/// EXT-B (§3.5's second open question): the deferential ISender against
/// loss-based competitors — AIMD, TCP Reno, and TCP CUBIC — across seed
/// replicates.
pub fn coexist_vs_tcp(duration: Dur, replicates: usize, max_branches: usize) -> SweepGrid {
    let base = coexist_base(
        "coexist-vs-tcp",
        PeerSpec::Aimd {
            timeout: Dur::from_secs(8),
        },
        duration,
        max_branches,
        0xFB2,
    );
    SweepGrid::new(base)
        .axis(Axis::Peer(vec![
            PeerSpec::Aimd {
                timeout: Dur::from_secs(8),
            },
            PeerSpec::TcpReno { max_window: 64 },
            PeerSpec::TcpCubic { max_window: 64 },
        ]))
        .axis(Axis::Seeds(replicates))
}

/// The shared base of the graph-topology presets: the given topology's
/// flow 0 is an α = 1 exact ISender (its coexistence prior is derived
/// from its route's bottleneck link, so `prior` here is inert) and every
/// other declared flow is an AIMD competitor.
fn graph_base(
    name: &str,
    topology: GraphTopology,
    duration: Dur,
    max_branches: usize,
    base_seed: u64,
) -> ScenarioSpec {
    let peers = vec![
        PeerSpec::Aimd {
            timeout: Dur::from_secs(8),
        };
        topology.flows.len() - 1
    ];
    ScenarioSpec {
        name: name.into(),
        topology: TopologySpec::Graph(topology),
        prior: PriorSpec::Small,
        sender: SenderSpec::IsenderExact {
            alpha: 1.0,
            latency_penalty: 0.0,
            max_branches,
        },
        workload: WorkloadSpec::Coexist(CoexistSpec { peers }),
        duration,
        base_seed,
        observe: ObserveSpec::default(),
    }
}

/// EXT-E: a three-pair dumbbell — the exact ISender and two AIMD cross
/// flows colliding in one shared 24 kbit/s bottleneck queue behind fast
/// access links — across seed replicates. The report's
/// `class_goodput_bps` column splits goodput into the `primary` and
/// `cross` classes.
pub fn dumbbell_cross(duration: Dur, replicates: usize, max_branches: usize) -> SweepGrid {
    let topo = augur_topo::dumbbell(
        3,
        BitRate::from_bps(96_000),
        BitRate::from_bps(24_000),
        Dur::from_millis(20),
        Bits::new(96_000),
        Bits::from_bytes(1_500),
    );
    let base = graph_base("dumbbell-cross", topo, duration, max_branches, 0xD0BB);
    SweepGrid::new(base).axis(Axis::Seeds(replicates))
}

/// EXT-F: a three-hop parking lot — the exact ISender drives the `long`
/// flow across all three 24 kbit/s links while an AIMD `short` flow
/// competes on each hop — across seed replicates. The Jain and
/// `class_goodput_bps` columns expose the long flow's multi-bottleneck
/// disadvantage.
pub fn parking_lot(duration: Dur, replicates: usize, max_branches: usize) -> SweepGrid {
    let topo = augur_topo::parking_lot(
        3,
        BitRate::from_bps(24_000),
        Dur::from_millis(10),
        Bits::new(96_000),
        Bits::from_bytes(1_500),
    );
    let base = graph_base("parking-lot", topo, duration, max_branches, 0x9A51);
    SweepGrid::new(base).axis(Axis::Seeds(replicates))
}

/// Figure 3: one 300 s closed-loop run per α ∈ {0.9, 1, 2.5, 5} over the
/// paper's ground truth (square-wave cross traffic) and prior.
pub fn fig3(duration: Dur, max_branches: usize) -> SweepGrid {
    let mut base = ScenarioSpec::paper_baseline("fig3");
    base.duration = duration;
    base.sender = SenderSpec::IsenderExact {
        alpha: 1.0,
        latency_penalty: 0.0,
        max_branches,
    };
    SweepGrid::new(base).axis(Axis::Alpha(vec![0.9, 1.0, 2.5, 5.0]))
}

/// TXT2 (§4): α = 1 with and without the latency penalty, against cross
/// traffic at 0.35 c and a half-full buffer to drain.
pub fn txt2(duration: Dur) -> SweepGrid {
    let topology = ModelParams::simple_link(BitRate::from_bps(12_000), Bits::new(96_000))
        .with_cross_rate(BitRate::from_bps(4_200)) // 0.35c: room to work with
        .with_initial_fullness(Bits::new(48_000)); // half-full backlog to drain
    let prior = ModelPrior {
        link_rates: vec![BitRate::from_bps(10_000), BitRate::from_bps(12_000)],
        cross_fracs_ppm: vec![350_000, 700_000],
        losses: vec![Ppm::ZERO],
        buffer_capacities: vec![Bits::new(96_000)],
        fullness_step: Some(Bits::new(24_000)),
        mtts: Dur::from_secs(100),
        epoch: Dur::from_secs(1),
        gate_initial: vec![true],
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    };
    let base = ScenarioSpec {
        name: "txt2".into(),
        topology: TopologySpec::Model(topology),
        prior: PriorSpec::Custom(prior),
        sender: SenderSpec::IsenderExact {
            alpha: 1.0,
            latency_penalty: 0.0,
            max_branches: 50_000,
        },
        workload: WorkloadSpec::ClosedLoop,
        duration,
        base_seed: 0x72,
        observe: ObserveSpec::default(),
    };
    SweepGrid::new(base).axis(Axis::LatencyPenalty(vec![0.0, 0.5]))
}

/// EXT-C (§3.2's cost remark): exact enumeration vs a fixed-budget
/// particle filter across prior sizes, under a scripted 2 s ping
/// workload for 30 simulated seconds.
pub fn ext_scaling(sizes: Vec<usize>, n_particles: usize) -> SweepGrid {
    let base = ScenarioSpec {
        name: "scaling".into(),
        topology: TopologySpec::Model(
            ModelParams::simple_link(BitRate::from_bps(12_000), Bits::new(96_000))
                .with_cross_rate(BitRate::from_bps(8_400)),
        ),
        prior: PriorSpec::FineLinkRate {
            n: 101,
            lo_bps: 8_000,
            hi_bps: 16_000,
        },
        sender: SenderSpec::IsenderExact {
            alpha: 1.0,
            latency_penalty: 0.0,
            max_branches: 1 << 20,
        },
        workload: WorkloadSpec::ScriptedPing {
            interval: Dur::from_secs(2),
        },
        duration: Dur::from_secs(30),
        base_seed: 0xE57,
        observe: ObserveSpec::default(),
    };
    SweepGrid::new(base)
        .axis(Axis::Sender(vec![
            SenderSpec::IsenderExact {
                alpha: 1.0,
                latency_penalty: 0.0,
                max_branches: 1 << 20,
            },
            SenderSpec::IsenderParticle {
                alpha: 1.0,
                latency_penalty: 0.0,
                n_particles,
            },
        ]))
        .axis(Axis::PriorSize(sizes))
}

/// EXT-SCALING-FLOWS: the many-flow driver under population growth —
/// N ∈ {10, 100, 1000, 10000} belief-free agents (alternating AIMD and
/// TCP Reno) sharing one 12 Mbit/s bottleneck via
/// [`augur_core::build_many_flow_bottleneck`]. One row per flow count
/// and seed; aggregate goodput, Jain index, and drops expose how the
/// heap-scheduled [`augur_core::FlowDriver`] holds up as the agent
/// population scales three orders of magnitude. The sender spec is
/// inert (every agent comes from the workload mix).
pub fn ext_scaling_flows(duration: Dur, replicates: usize) -> SweepGrid {
    let base = ScenarioSpec {
        name: "ext-scaling-flows".into(),
        topology: TopologySpec::Model(ModelParams::simple_link(
            BitRate::from_bps(12_000_000),
            Bits::new(480_000),
        )),
        prior: PriorSpec::Small,
        sender: SenderSpec::TcpReno { max_window: 64 },
        workload: WorkloadSpec::ManyFlows(ManyFlowSpec {
            flows: 10,
            mix: vec![
                PeerSpec::Aimd {
                    timeout: Dur::from_secs(8),
                },
                PeerSpec::TcpReno { max_window: 64 },
            ],
        }),
        duration,
        base_seed: 0x5CA1E,
        observe: ObserveSpec::default(),
    };
    SweepGrid::new(base)
        .axis(Axis::Flows(vec![10, 100, 1_000, 10_000]))
        .axis(Axis::Seeds(replicates))
}

/// FIG1 (bufferbloat): a TCP Reno bulk download over the LTE-like
/// cellular path with its deep drop-tail buffer — per-ACK RTTs climb
/// from the propagation floor into the seconds. The prior is inert
/// (TCP senders carry no belief).
pub fn fig1(duration: Dur) -> SweepGrid {
    SweepGrid::new(ScenarioSpec {
        name: "fig1".into(),
        topology: TopologySpec::Cellular {
            params: CellularParams::lte_like(),
            queue: QueueSpec::DropTail,
        },
        prior: PriorSpec::Small,
        sender: SenderSpec::TcpReno { max_window: 1_000 },
        workload: WorkloadSpec::ClosedLoop,
        duration,
        base_seed: 0xF1,
        observe: ObserveSpec::default(),
    })
}

/// TAB1 (Figure 2's table): the α = 1 exact ISender over the paper's
/// ground truth and prior — the run whose posterior snapshots show each
/// parameter concentrating on its actual value.
pub fn tab1(duration: Dur, max_branches: usize) -> SweepGrid {
    let mut base = ScenarioSpec::paper_baseline("tab1");
    base.duration = duration;
    base.base_seed = 0x7AB1;
    base.sender = SenderSpec::IsenderExact {
        alpha: 1.0,
        latency_penalty: 0.0,
        max_branches,
    };
    SweepGrid::new(base)
}

/// TXT1 (§4's simple configuration): a single ISender on a quiet
/// unknown link — c = 12 kbit/s and a half-full buffer, neither known to
/// the sender, no cross traffic and no loss anywhere in the prior.
pub fn txt1(duration: Dur) -> SweepGrid {
    let topology = ModelParams {
        link_rate: BitRate::from_bps(12_000),
        cross_rate: BitRate::from_bps(8_400),
        gate: GateSpec::AlwaysOn,
        loss: Ppm::ZERO,
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::new(48_000),
        packet_size: Bits::from_bytes(1_500),
        cross_active: false,
    };
    let prior = ModelPrior {
        link_rates: (5..=8).map(|k| BitRate::from_bps(k * 2_000)).collect(),
        cross_fracs_ppm: vec![700_000],
        losses: vec![Ppm::ZERO],
        buffer_capacities: vec![Bits::new(96_000)],
        fullness_step: Some(Bits::new(12_000)),
        mtts: Dur::from_secs(100),
        epoch: Dur::from_secs(1),
        gate_initial: vec![true],
        packet_size: Bits::from_bytes(1_500),
        cross_active: false,
    };
    SweepGrid::new(ScenarioSpec {
        name: "txt1".into(),
        topology: TopologySpec::Model(topology),
        prior: PriorSpec::Custom(prior),
        sender: SenderSpec::IsenderExact {
            alpha: 1.0,
            latency_penalty: 0.0,
            max_branches: 50_000,
        },
        workload: WorkloadSpec::ClosedLoop,
        duration,
        base_seed: 0x1,
        observe: ObserveSpec::default(),
    })
}

/// EXT-D (§3.5's AQM remark): the FIG1 download with the deep buffer's
/// queue discipline swept over drop-tail, RED, and CoDel — the
/// in-network fix to bufferbloat.
pub fn ext_aqm(duration: Dur) -> SweepGrid {
    let params = CellularParams::lte_like();
    let capacity = params.buffer_capacity.as_u64();
    let mut grid = fig1(duration);
    grid.base.name = "ext-aqm".into();
    grid.base.base_seed = 0xA0;
    grid.axis(Axis::Queue(vec![
        QueueSpec::DropTail,
        QueueSpec::Red {
            min_th: Bits::new(capacity / 12),
            max_th: Bits::new(capacity / 4),
            max_p: Ppm::from_prob(0.1),
            w_shift: 9, // EWMA weight 1/512
        },
        QueueSpec::CoDel {
            target: Dur::from_millis(5),
            interval: Dur::from_millis(100),
        },
    ]))
}

/// A shipped synthetic trace as a looping rate process. The label is the
/// path the canonical spec file references, relative to
/// `experiments/specs/` — the preset embeds the generator's samples, so
/// running it never touches the filesystem, while parsing the spec file
/// loads the committed CSV; the round-trip tests pin that both agree.
fn shipped_trace(stem: &str) -> RateProcess {
    RateProcess::Trace {
        label: format!("../traces/{stem}.csv"),
        samples: traces::by_name(stem).expect("shipped trace registry"),
        end: TraceEnd::Loop,
    }
}

/// Trace-driven cellular replay (the ROADMAP's last experiment-fidelity
/// item): TCP Reno vs CUBIC bulk downloads over the LTE-like path with
/// the radio link *replaying* synthetic measured-style rate traces
/// instead of FIG1's 4-step periodic schedule, crossed with the EXT-D
/// queue-discipline axis (drop-tail / RED / CoDel). Real cellular links
/// vary faster and less regularly than any periodic schedule (Goyal et
/// al., PAPERS.md) — the trace path exercises serialization across rate
/// changes, which is exactly what the integrated-rate fix in
/// `Link::start_service` makes honest.
pub fn replay_cellular(duration: Dur) -> SweepGrid {
    let mut params = CellularParams::lte_like();
    params.rate = shipped_trace("lte-fade");
    let capacity = params.buffer_capacity.as_u64();
    let base = ScenarioSpec {
        name: "replay-cellular".into(),
        topology: TopologySpec::Cellular {
            params,
            queue: QueueSpec::DropTail,
        },
        prior: PriorSpec::Small, // inert: TCP senders carry no belief
        sender: SenderSpec::TcpReno { max_window: 1_000 },
        workload: WorkloadSpec::ClosedLoop,
        duration,
        base_seed: 0xCE11,
        observe: ObserveSpec::default(),
    };
    SweepGrid::new(base)
        .axis(Axis::Sender(vec![
            SenderSpec::TcpReno { max_window: 1_000 },
            SenderSpec::TcpCubic { max_window: 1_000 },
        ]))
        .axis(Axis::RateTrace(vec![
            shipped_trace("lte-fade"),
            shipped_trace("lte-scatter"),
        ]))
        .axis(Axis::Queue(vec![
            QueueSpec::DropTail,
            QueueSpec::Red {
                min_th: Bits::new(capacity / 12),
                max_th: Bits::new(capacity / 4),
                max_p: Ppm::from_prob(0.1),
                w_shift: 9, // EWMA weight 1/512
            },
            QueueSpec::CoDel {
                target: Dur::from_millis(5),
                interval: Dur::from_millis(100),
            },
        ]))
}

/// A quick smoke sweep: the Small prior over a short closed loop, exact
/// vs particle, a few seed replicates — small enough for CI.
pub fn smoke(duration: Dur, replicates: usize) -> SweepGrid {
    let mut base = ScenarioSpec::paper_baseline("smoke");
    base.prior = PriorSpec::Small;
    base.duration = duration;
    base.base_seed = 0x5A0E;
    SweepGrid::new(base)
        .axis(Axis::Sender(vec![
            SenderSpec::IsenderExact {
                alpha: 1.0,
                latency_penalty: 0.0,
                max_branches: 4_096,
            },
            SenderSpec::IsenderParticle {
                alpha: 1.0,
                latency_penalty: 0.0,
                n_particles: 64,
            },
        ]))
        .axis(Axis::Seeds(replicates))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_grid_matches_the_paper() {
        let grid = fig3(Dur::from_secs(300), 50_000);
        assert_eq!(grid.len(), 4);
        let runs = grid.expand();
        let alphas: Vec<f64> = runs
            .iter()
            .map(|r| r.spec.sender.alpha().unwrap())
            .collect();
        assert_eq!(alphas, vec![0.9, 1.0, 2.5, 5.0]);
        assert!(runs
            .iter()
            .all(|r| r.spec.workload == WorkloadSpec::ClosedLoop));
    }

    #[test]
    fn ext_scaling_crosses_engines_with_sizes() {
        let grid = ext_scaling(vec![101, 1_001], 1_000);
        let runs = grid.expand();
        assert_eq!(runs.len(), 4);
        // Sender is the slow axis: exact×both sizes first, then particle.
        assert_eq!(runs[0].spec.sender.label(), "isender-exact");
        assert_eq!(runs[1].spec.sender.label(), "isender-exact");
        assert_eq!(runs[2].spec.sender.label(), "isender-particle");
        assert_eq!(runs[0].spec.prior.size(), 101);
        assert_eq!(runs[1].spec.prior.size(), 1_001);
    }

    #[test]
    fn coexist_fairness_expands_to_replicates() {
        let runs = coexist_fairness(Dur::from_secs(60), 3, 50_000).expand();
        assert_eq!(runs.len(), 3);
        for r in &runs {
            match &r.spec.workload {
                WorkloadSpec::Coexist(cx) => {
                    assert_eq!(cx.peers, vec![PeerSpec::Isender { alpha: 1.0 }])
                }
                other => panic!("unexpected workload {other:?}"),
            }
        }
    }

    #[test]
    fn coexist_vs_tcp_crosses_peers_with_seeds() {
        let runs = coexist_vs_tcp(Dur::from_secs(60), 2, 50_000).expand();
        assert_eq!(runs.len(), 6);
        let peers: Vec<String> = runs
            .iter()
            .map(|r| match &r.spec.workload {
                WorkloadSpec::Coexist(cx) => cx.label(),
                other => panic!("unexpected workload {other:?}"),
            })
            .collect();
        assert_eq!(
            peers,
            [
                "aimd",
                "aimd",
                "tcp-reno",
                "tcp-reno",
                "tcp-cubic",
                "tcp-cubic"
            ]
        );
        assert_eq!(runs[2].point(), "peer=tcp-reno replicate=0");
    }

    #[test]
    fn txt2_sweeps_the_latency_penalty() {
        let runs = txt2(Dur::from_secs(120)).expand();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].point(), "latency_penalty=0");
        assert_eq!(runs[1].point(), "latency_penalty=0.5");
    }
}
