//! Sweep grids: axes × base spec → a cartesian run list.
//!
//! A [`SweepGrid`] holds a base [`ScenarioSpec`] and an ordered list of
//! [`Axis`] values. [`SweepGrid::expand`] produces one [`RunSpec`] per
//! cartesian grid point — first axis slowest, last axis fastest — each
//! with a seed derived deterministically from `(base_seed, run_index)`
//! via [`SimRng::derive_seed`]. Because the seed is a pure function of
//! the index, executing the run list serially or across any number of
//! worker threads yields bit-identical results.

use crate::spec::{
    PeerSpec, PriorSpec, QueueSpec, ScenarioSpec, SenderSpec, TopologySpec, WorkloadSpec,
};
use augur_elements::RateProcess;
use augur_sim::{BitRate, Bits, Ppm, SimRng};

/// One sweep dimension.
#[derive(Debug, Clone)]
pub enum Axis {
    /// Utility α values (ISender senders only).
    Alpha(Vec<f64>),
    /// Latency penalty λ values (ISender senders only).
    LatencyPenalty(Vec<f64>),
    /// Ground-truth bottleneck link speeds.
    LinkRate(Vec<BitRate>),
    /// Ground-truth cross-traffic rates (enables the cross source).
    CrossRate(Vec<BitRate>),
    /// Ground-truth buffer capacities.
    BufferCapacity(Vec<Bits>),
    /// Ground-truth initial buffer backlogs.
    InitialFullness(Vec<Bits>),
    /// Ground-truth last-mile loss rates.
    Loss(Vec<Ppm>),
    /// Whole sender configurations (e.g. exact vs particle vs TCP).
    Sender(Vec<SenderSpec>),
    /// Coexistence peers (requires a [`WorkloadSpec::Coexist`] workload);
    /// each point replaces the workload's whole peer list with the one
    /// given peer.
    Peer(Vec<PeerSpec>),
    /// Queue disciplines of the cellular path's deep buffer (requires a
    /// [`TopologySpec::Cellular`] topology).
    Queue(Vec<QueueSpec>),
    /// Rate processes of the cellular path's radio link — one replayed
    /// trace file per point (requires a [`TopologySpec::Cellular`]
    /// topology).
    RateTrace(Vec<RateProcess>),
    /// Prior sizes (requires a [`PriorSpec::FineLinkRate`] prior).
    PriorSize(Vec<usize>),
    /// Concurrent flow counts (requires a [`WorkloadSpec::ManyFlows`]
    /// workload); each point sets the workload's flow count.
    Flows(Vec<usize>),
    /// `k` seed replicates: the spec is unchanged, but each replicate is
    /// a distinct run index and therefore a distinct derived seed.
    Seeds(usize),
}

impl Axis {
    /// Points along this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Alpha(v) => v.len(),
            Axis::LatencyPenalty(v) => v.len(),
            Axis::LinkRate(v) => v.len(),
            Axis::CrossRate(v) => v.len(),
            Axis::BufferCapacity(v) => v.len(),
            Axis::InitialFullness(v) => v.len(),
            Axis::Loss(v) => v.len(),
            Axis::Sender(v) => v.len(),
            Axis::Peer(v) => v.len(),
            Axis::Queue(v) => v.len(),
            Axis::RateTrace(v) => v.len(),
            Axis::PriorSize(v) => v.len(),
            Axis::Flows(v) => v.len(),
            Axis::Seeds(k) => *k,
        }
    }

    /// True iff the axis has no points (expansion of an empty axis yields
    /// an empty run list).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable axis name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Alpha(_) => "alpha",
            Axis::LatencyPenalty(_) => "latency_penalty",
            Axis::LinkRate(_) => "link_bps",
            Axis::CrossRate(_) => "cross_bps",
            Axis::BufferCapacity(_) => "buffer_bits",
            Axis::InitialFullness(_) => "fullness_bits",
            Axis::Loss(_) => "loss_ppm",
            Axis::Sender(_) => "sender",
            Axis::Peer(_) => "peer",
            Axis::Queue(_) => "queue",
            Axis::RateTrace(_) => "rate_trace",
            Axis::PriorSize(_) => "prior_size",
            Axis::Flows(_) => "flows",
            Axis::Seeds(_) => "replicate",
        }
    }

    /// Human-readable value label of point `i`.
    pub fn label(&self, i: usize) -> String {
        match self {
            Axis::Alpha(v) => format!("{}", v[i]),
            Axis::LatencyPenalty(v) => format!("{}", v[i]),
            Axis::LinkRate(v) => format!("{}", v[i].as_bps()),
            Axis::CrossRate(v) => format!("{}", v[i].as_bps()),
            Axis::BufferCapacity(v) => format!("{}", v[i].as_u64()),
            Axis::InitialFullness(v) => format!("{}", v[i].as_u64()),
            Axis::Loss(v) => format!("{}", v[i].as_u32()),
            Axis::Sender(v) => v[i].label().to_string(),
            Axis::Peer(v) => v[i].label().to_string(),
            Axis::Queue(v) => v[i].label().to_string(),
            Axis::RateTrace(v) => rate_point_label(&v[i]),
            Axis::PriorSize(v) => format!("{}", v[i]),
            Axis::Flows(v) => format!("{}", v[i]),
            Axis::Seeds(_) => format!("{i}"),
        }
    }

    /// Write point `i` into the spec.
    fn apply(&self, i: usize, spec: &mut ScenarioSpec) {
        match self {
            Axis::Alpha(v) => spec.sender.set_alpha(v[i]),
            Axis::LatencyPenalty(v) => spec.sender.set_latency_penalty(v[i]),
            Axis::LinkRate(v) => spec.topology.model_mut("link-rate axis").link_rate = v[i],
            Axis::CrossRate(v) => {
                let m = spec.topology.model_mut("cross-rate axis");
                m.cross_rate = v[i];
                m.cross_active = true;
            }
            Axis::BufferCapacity(v) => {
                spec.topology
                    .model_mut("buffer-capacity axis")
                    .buffer_capacity = v[i]
            }
            Axis::InitialFullness(v) => {
                spec.topology
                    .model_mut("initial-fullness axis")
                    .initial_fullness = v[i]
            }
            Axis::Loss(v) => spec.topology.model_mut("loss axis").loss = v[i],
            Axis::Sender(v) => spec.sender = v[i].clone(),
            Axis::Peer(v) => match &mut spec.workload {
                WorkloadSpec::Coexist(cx) => cx.peers = vec![v[i]],
                other => panic!("peer axis over non-coexist workload {other:?}"),
            },
            Axis::Queue(v) => match &mut spec.topology {
                TopologySpec::Cellular { queue, .. } => *queue = v[i].clone(),
                other => panic!("queue axis over non-cellular topology {other:?}"),
            },
            Axis::RateTrace(v) => match &mut spec.topology {
                TopologySpec::Cellular { params, .. } => params.rate = v[i].clone(),
                other => panic!("rate-trace axis over non-cellular topology {other:?}"),
            },
            Axis::PriorSize(v) => match &mut spec.prior {
                PriorSpec::FineLinkRate { n, .. } => *n = v[i],
                other => panic!("prior-size axis over non-scalable prior {other:?}"),
            },
            Axis::Flows(v) => match &mut spec.workload {
                WorkloadSpec::ManyFlows(mf) => mf.flows = v[i],
                other => panic!("flows axis over non-many-flows workload {other:?}"),
            },
            Axis::Seeds(_) => {} // the run index alone differentiates replicates
        }
    }
}

/// The report label of a rate-trace axis point: the trace's file stem
/// (`../traces/lte-fade.csv` → `lte-fade`), falling back to the rate
/// kind for the non-trace processes a hand-built grid could hold. The
/// config decoder rejects rate-trace axes whose points share a stem, so
/// grid coordinates built from spec files stay unique.
pub(crate) fn rate_point_label(rate: &RateProcess) -> String {
    match rate {
        RateProcess::Trace { label, .. } => {
            let file = label.rsplit(['/', '\\']).next().unwrap_or(label.as_str());
            file.strip_suffix(".csv").unwrap_or(file).to_string()
        }
        RateProcess::Const(r) => format!("{}", r.as_bps()),
        RateProcess::Schedule { .. } => "schedule".into(),
    }
}

/// One expanded run: a concrete spec, its position in the grid, and its
/// derived seed.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Position in the expanded run list (also the seed stream index).
    pub index: usize,
    /// The fully-applied scenario.
    pub spec: ScenarioSpec,
    /// `SimRng::derive_seed(base_seed, index)` — the run's root seed.
    pub seed: u64,
    /// `(axis name, value label)` per axis, for reporting.
    pub coords: Vec<(String, String)>,
}

impl RunSpec {
    /// The coordinates as one compact label, e.g. `alpha=1 replicate=3`.
    pub fn point(&self) -> String {
        self.coords
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A base scenario plus sweep axes.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// The spec every run starts from.
    pub base: ScenarioSpec,
    /// Sweep dimensions, slowest-varying first.
    pub axes: Vec<Axis>,
}

impl SweepGrid {
    /// A grid with no axes (expands to the single base run).
    pub fn new(base: ScenarioSpec) -> SweepGrid {
        SweepGrid {
            base,
            axes: Vec::new(),
        }
    }

    /// Append an axis (builder style).
    pub fn axis(mut self, axis: Axis) -> SweepGrid {
        self.axes.push(axis);
        self
    }

    /// Total number of runs (product of axis lengths).
    pub fn len(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// True iff some axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expand to the cartesian run list. The first axis varies slowest,
    /// the last fastest; run `index` enumerates in that order, and each
    /// run's seed is `SimRng::derive_seed(base.base_seed, index)`.
    pub fn expand(&self) -> Vec<RunSpec> {
        let total = self.len();
        let mut runs = Vec::with_capacity(total);
        for index in 0..total {
            // Decompose index into per-axis digits, last axis fastest.
            let mut rem = index;
            let mut digits = vec![0usize; self.axes.len()];
            for (d, axis) in self.axes.iter().enumerate().rev() {
                digits[d] = rem % axis.len();
                rem /= axis.len();
            }
            let mut spec = self.base.clone();
            let mut coords = Vec::with_capacity(self.axes.len());
            for (axis, &i) in self.axes.iter().zip(&digits) {
                axis.apply(i, &mut spec);
                coords.push((axis.name().to_string(), axis.label(i)));
            }
            runs.push(RunSpec {
                index,
                seed: SimRng::derive_seed(self.base.base_seed, index as u64),
                spec,
                coords,
            });
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use augur_sim::Dur;

    fn base() -> ScenarioSpec {
        let mut s = ScenarioSpec::paper_baseline("test");
        s.duration = Dur::from_secs(10);
        s.base_seed = 42;
        s
    }

    #[test]
    fn cartesian_count_is_product_of_axes() {
        let grid = SweepGrid::new(base())
            .axis(Axis::Alpha(vec![0.9, 1.0, 2.5]))
            .axis(Axis::BufferCapacity(vec![
                Bits::new(48_000),
                Bits::new(96_000),
            ]))
            .axis(Axis::Seeds(4));
        assert_eq!(grid.len(), 3 * 2 * 4);
        assert_eq!(grid.expand().len(), 24);
    }

    #[test]
    fn no_axes_expands_to_single_base_run() {
        let runs = SweepGrid::new(base()).expand();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].index, 0);
        assert!(runs[0].coords.is_empty());
    }

    #[test]
    fn last_axis_varies_fastest() {
        let grid = SweepGrid::new(base())
            .axis(Axis::Alpha(vec![0.9, 5.0]))
            .axis(Axis::Seeds(2));
        let runs = grid.expand();
        let alphas: Vec<f64> = runs
            .iter()
            .map(|r| r.spec.sender.alpha().unwrap())
            .collect();
        assert_eq!(alphas, vec![0.9, 0.9, 5.0, 5.0]);
        let replicates: Vec<&str> = runs
            .iter()
            .map(|r| r.coords.last().unwrap().1.as_str())
            .collect();
        assert_eq!(replicates, vec!["0", "1", "0", "1"]);
    }

    #[test]
    fn axis_application_writes_topology_and_sender() {
        let grid = SweepGrid::new(base())
            .axis(Axis::LinkRate(vec![BitRate::from_bps(9_000)]))
            .axis(Axis::Loss(vec![Ppm::from_prob(0.1)]))
            .axis(Axis::LatencyPenalty(vec![0.5]));
        let runs = grid.expand();
        let topology = runs[0].spec.topology.model("test");
        assert_eq!(topology.link_rate, BitRate::from_bps(9_000));
        assert_eq!(topology.loss, Ppm::from_prob(0.1));
        match runs[0].spec.sender {
            SenderSpec::IsenderExact {
                latency_penalty, ..
            } => assert_eq!(latency_penalty, 0.5),
            ref other => panic!("unexpected sender {other:?}"),
        }
    }

    #[test]
    fn seed_derivation_is_stable_and_unique_per_index() {
        let grid = SweepGrid::new(base()).axis(Axis::Seeds(16));
        let a = grid.expand();
        let b = grid.expand();
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.seed, rb.seed, "expansion must be reproducible");
            assert_eq!(ra.seed, SimRng::derive_seed(42, ra.index as u64));
        }
        let mut seeds: Vec<u64> = a.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16, "replicate seeds must be distinct");
    }

    #[test]
    fn point_label_joins_coordinates() {
        let grid = SweepGrid::new(base())
            .axis(Axis::Alpha(vec![2.5]))
            .axis(Axis::Seeds(1));
        let runs = grid.expand();
        assert_eq!(runs[0].point(), "alpha=2.5 replicate=0");
    }

    #[test]
    #[should_panic(expected = "non-coexist workload")]
    fn peer_axis_over_plain_workload_is_a_spec_error() {
        let grid = SweepGrid::new(base()).axis(Axis::Peer(vec![PeerSpec::Aimd {
            timeout: augur_sim::Dur::from_secs(8),
        }]));
        let _ = grid.expand();
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let grid = SweepGrid::new(base()).axis(Axis::Alpha(vec![]));
        assert!(grid.is_empty());
        assert_eq!(grid.expand().len(), 0);
    }
}
