#![forbid(unsafe_code)]
//! `augur-bench` — the experiment harness.
//!
//! One binary per paper artifact (see DESIGN.md §3 for the index):
//!
//! | binary                | artifact |
//! |-----------------------|----------|
//! | `fig1_bufferbloat`    | Figure 1: TCP RTT blow-up on an LTE-like path |
//! | `tab1_convergence`    | Figure 2's parameter table: prior → posterior |
//! | `fig3_alpha_sweep`    | Figure 3: sequence number vs time across α |
//! | `txt1_simple_link`    | §4: single sender on an unknown link |
//! | `txt2_latency_penalty`| §4: latency penalty drains the buffer first |
//! | `ext_fairness`        | §3.5: two ISenders sharing a bottleneck (coexist-fairness preset) |
//! | `ext_vs_tcp`          | §3.5: ISender vs AIMD / TCP Reno / CUBIC (coexist-vs-tcp preset) |
//! | `ext_scaling`         | §5: exact enumeration vs particle filter |
//! | `ext_aqm`             | §3.5: AQM (RED/CoDel) vs deep FIFO under TCP |
//!
//! Each binary prints its figure as an ASCII chart, writes CSV under
//! `experiments/`, and prints the shape checks EXPERIMENTS.md records.

use augur_elements::ModelParams;
use augur_inference::{Belief, BeliefConfig, ModelPrior};
use augur_trace::Series;
use std::fs;
use std::path::PathBuf;

/// Where experiment CSVs land (override with `AUGUR_OUT`).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("AUGUR_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("experiments"));
    fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Write series to `<out_dir>/<name>.csv` (wide format) and report the
/// path on stdout.
pub fn save_csv(name: &str, series: &[&Series]) {
    let path = out_dir().join(format!("{name}.csv"));
    let file = fs::File::create(&path).expect("create csv");
    augur_trace::write_wide(std::io::BufWriter::new(file), series).expect("write csv");
    println!("  wrote {}", path.display());
}

/// The paper's prior as a belief, with a configurable branch cap.
/// (The scenario runner's `spec_ground_truth`/`spec_isender` replaced
/// the old binary-local harness constructors; this remains for the
/// feature-gated criterion benches.)
pub fn paper_belief(max_branches: usize) -> Belief<ModelParams> {
    ModelPrior::paper().belief(BeliefConfig {
        max_branches,
        ..BeliefConfig::default()
    })
}

/// Render a one-line pass/fail check.
pub fn check(name: &str, ok: bool, detail: impl std::fmt::Display) {
    println!("  [{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
}
