#![forbid(unsafe_code)]
//! EXT-B — §3.5's second open question: an ISender sharing a bottleneck
//! with loss-based senders. A thin wrapper over the `coexist-vs-tcp`
//! scenario preset, whose peer axis runs the compact AIMD core (the
//! congestion-control structure all of §2's TCP variants share) plus
//! full TCP Reno and CUBIC endpoints.
//!
//! Expected shape: loss-based senders fill queues by design, the
//! deferential ISender (α = 1) backs off, so the split is unequal but
//! both make progress — quantifying the paper's worry that a
//! deferential sender may be out-competed by a loss-based one.

use augur_bench::{check, out_dir};
use augur_scenario::{presets, SweepRunner};
use augur_sim::Dur;
use std::fs;
use std::io::BufWriter;

fn main() {
    println!("EXT-B: ISender (alpha=1) vs loss-based senders on a 24 kbit/s bottleneck, 200 s\n");
    let grid = presets::coexist_vs_tcp(Dur::from_secs(200), 1, 50_000);
    let runs = grid.expand();
    let link_bps = runs[0].spec.topology.model("ext_vs_tcp").link_rate.as_bps();
    let report = SweepRunner::serial().run(&runs);

    for r in &report.runs {
        println!(
            "  vs {:<9}  ISender {:>6.0} bit/s ({} restarts) | peer {:>6.0} bit/s | Jain {:.3}",
            r.peer,
            r.goodput_bps,
            r.restarts_a.unwrap_or(0),
            r.goodput_b_bps,
            r.jain,
        );
    }

    let csv_path = out_dir().join("ext_vs_tcp.csv");
    let file = fs::File::create(&csv_path).expect("create csv");
    report.write_csv(BufWriter::new(file)).expect("write csv");
    println!("  wrote {}", csv_path.display());

    let aimd = report
        .runs
        .iter()
        .find(|r| r.peer == "aimd")
        .expect("aimd point present");
    let (rm, rt) = (aimd.goodput_bps, aimd.goodput_b_bps);
    println!("\nShape checks (vs AIMD):");
    check(
        "both flows make progress",
        rm > 500.0 && rt > 500.0,
        format!("{rm:.0} / {rt:.0} bit/s"),
    );
    check(
        "link well utilized (> 60%)",
        rm + rt > link_bps as f64 * 0.6,
        format!("{:.0} bit/s", rm + rt),
    );
    check(
        "loss-based sender out-competes the deferential ISender (the paper's worry)",
        rt > rm,
        format!("AIMD {rt:.0} > ISender {rm:.0}"),
    );
    let max_combined = report
        .runs
        .iter()
        .map(|r| r.goodput_bps + r.goodput_b_bps)
        .fold(0.0_f64, f64::max);
    check(
        "no pairing overdrives the link",
        max_combined <= link_bps as f64 * 1.05,
        format!("max combined {max_combined:.0} bit/s of {link_bps}"),
    );
}
