//! EXT-B — §3.5's second open question: an ISender sharing a bottleneck
//! with a TCP-like loss-based sender. The competitor here is a compact
//! AIMD window sender (additive increase per delivery, halve on an
//! RTO-style gap) — the congestion-control core that all the paper's §2
//! TCP variants share.
//!
//! Expected shape: AIMD fills queues by design, the deferential ISender
//! (α = 1) backs off, so the split is unequal but both make progress —
//! quantifying the paper's worry that a deferential sender may be
//! out-competed by a loss-based one.

use augur_bench::check;
use augur_bench::coexist::{
    build_two_flow, coexist_belief, run_coexistence, Agent, AimdSender, RestartingSender,
};
use augur_core::{DiscountedThroughput, ISenderConfig};
use augur_sim::{BitRate, Bits, Dur, Ppm, Time};

fn main() {
    println!("EXT-B: ISender (alpha=1) vs AIMD sender on a 24 kbit/s bottleneck, 200 s\n");
    let link_bps = 24_000;
    let buffer_bits = 96_000;
    let mut truth = build_two_flow(
        BitRate::from_bps(link_bps),
        Bits::new(buffer_bits),
        Ppm::ZERO,
        0xFB2,
    );
    let mut a = Agent::Model(Box::new(RestartingSender::new(
        Box::new(move || coexist_belief(link_bps, buffer_bits)),
        Box::new(DiscountedThroughput::with_alpha(1.0)),
        ISenderConfig::default(),
    )));
    let mut b = Agent::Aimd(AimdSender::new(Dur::from_secs(8)));
    let t_end = Time::from_secs(200);
    let (bits_model, bits_aimd) = run_coexistence(&mut truth, &mut a, &mut b, t_end);

    let (rm, rt) = (
        bits_model as f64 / t_end.as_secs_f64(),
        bits_aimd as f64 / t_end.as_secs_f64(),
    );
    let restarts = match &a {
        Agent::Model(x) => x.restarts,
        _ => unreachable!(),
    };
    println!("  ISender: {rm:.0} bit/s ({restarts} belief restarts)");
    println!("  AIMD:    {rt:.0} bit/s");
    println!("  combined {:.0} of {link_bps} bit/s", rm + rt);

    println!("\nShape checks:");
    check(
        "both flows make progress",
        rm > 500.0 && rt > 500.0,
        format!("{rm:.0} / {rt:.0} bit/s"),
    );
    check(
        "link well utilized (> 60%)",
        rm + rt > link_bps as f64 * 0.6,
        format!("{:.0} bit/s", rm + rt),
    );
    check(
        "loss-based sender out-competes the deferential ISender (the paper's worry)",
        rt > rm,
        format!("AIMD {rt:.0} > ISender {rm:.0}"),
    );
}
