#![forbid(unsafe_code)]
//! TXT2 — §4's second claim: "If cross traffic is present and the utility
//! function penalizes induced latency to other traffic, then the ISENDER
//! drains the buffer before sending at the link speed."
//!
//! Two senders face the same ground truth (cross traffic at 0.35c, a
//! buffer that starts half full): one with the pure α = 1 utility, one
//! with an added latency penalty on cross traffic. The penalized sender
//! must hold back while the backlog drains and keep the standing queue
//! shallower. The experiment is the `presets::txt2` scenario grid (the
//! latency penalty is a sweep axis); this binary adds the plot and the
//! shape checks.

use augur_bench::{check, save_csv};
use augur_core::RunTrace;
use augur_scenario::{presets, SweepRunner};
use augur_sim::{Dur, Time};
use augur_trace::{render, PlotConfig, Series};

/// Mean cross-traffic delay in the second minute (steady state). Cross
/// packets are emitted isochronously, one packet-service-time apart at
/// the cross rate — derive the period from the scenario's topology so a
/// preset retune cannot desynchronize this measurement.
fn mean_cross_delay(trace: &RunTrace, topology: &augur_elements::ModelParams) -> f64 {
    let period_s = topology.packet_size.as_f64() / topology.cross_rate.as_bps() as f64;
    let delays: Vec<f64> = trace
        .cross_deliveries
        .iter()
        .filter(|(_, t, _)| *t >= Time::from_secs(60))
        .map(|(seq, t, _)| {
            let sent = *seq as f64 * period_s;
            t.as_secs_f64() - sent
        })
        .collect();
    if delays.is_empty() {
        f64::NAN
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    }
}

fn main() {
    println!("TXT2: latency-penalty utility drains the buffer before filling the link, 120 s");
    let runs = presets::txt2(Dur::from_secs(120)).expand();
    let (_, traces) = SweepRunner::parallel().verbose().run_traced(&runs);
    // Match traces to runs by the spec's latency penalty, not by
    // position, so reordering the preset axis cannot swap them.
    let trace_with = |lp: f64| -> RunTrace {
        runs.iter()
            .zip(&traces)
            .find(|(run, _)| match run.spec.sender {
                augur_scenario::SenderSpec::IsenderExact {
                    latency_penalty, ..
                } => latency_penalty == lp,
                _ => false,
            })
            .and_then(|(_, trace)| trace.clone().into_closed_loop())
            .unwrap_or_else(|| panic!("latency_penalty={lp} run produces a trace"))
    };
    let plain = trace_with(0.0);
    let penalized = trace_with(0.5);
    let topology = runs[0].spec.topology.model("txt2");
    let (plain_delay, pen_delay) = (
        mean_cross_delay(&plain, topology),
        mean_cross_delay(&penalized, topology),
    );

    let series = |name: &str, trace: &RunTrace| {
        let mut s = Series::new(name);
        for (i, (_, t)) in trace.sends.iter().enumerate() {
            s.push(t.as_secs_f64(), (i + 1) as f64);
        }
        s
    };
    let s_plain = series("alpha=1", &plain);
    let s_pen = series("alpha=1 + latency penalty", &penalized);
    println!(
        "\n{}",
        render(
            &[&s_plain, &s_pen],
            &PlotConfig {
                title: "TXT2: sequence number vs time (half-full buffer at t=0)".into(),
                ..PlotConfig::default()
            }
        )
    );
    save_csv("txt2_seq_vs_time", &[&s_plain, &s_pen]);

    let first_plain = plain.sends.first().map(|(_, t)| t.as_secs_f64());
    let first_pen = penalized.sends.first().map(|(_, t)| t.as_secs_f64());
    let early_plain = plain.send_rate(Time::ZERO, Time::from_secs(8));
    let early_pen = penalized.send_rate(Time::ZERO, Time::from_secs(8));
    let steady_pen = penalized.send_rate(Time::from_secs(60), Time::from_secs(120));
    println!("\n  first send: plain {first_plain:?}s, penalized {first_pen:?}s");
    println!(
        "  rate 0-8s (backlog draining): plain {early_plain:.2}, penalized {early_pen:.2} pkt/s"
    );
    println!("  penalized steady rate 60-120s: {steady_pen:.2} pkt/s");
    println!("  mean cross delay 60-120s: plain {plain_delay:.2}s, penalized {pen_delay:.2}s");

    println!("\nShape checks:");
    check(
        "penalized sender holds back while the backlog drains",
        early_pen < early_plain,
        format!("{early_pen:.2} < {early_plain:.2} pkt/s in 0-8s"),
    );
    check(
        "penalized sender still uses the residual link afterwards",
        steady_pen > 0.3,
        format!("{steady_pen:.2} pkt/s steady"),
    );
    check(
        "cross traffic sees lower latency under the penalty",
        pen_delay < plain_delay,
        format!("{pen_delay:.2}s vs {plain_delay:.2}s"),
    );
}
