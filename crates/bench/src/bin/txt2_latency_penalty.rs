//! TXT2 — §4's second claim: "If cross traffic is present and the utility
//! function penalizes induced latency to other traffic, then the ISENDER
//! drains the buffer before sending at the link speed."
//!
//! Two senders face the same ground truth (cross traffic at 0.35c, a
//! buffer that starts half full): one with the pure α = 1 utility, one
//! with an added latency penalty on cross traffic. The penalized sender
//! must hold back while the backlog drains and keep the standing queue
//! shallower.

use augur_bench::{check, save_csv};
use augur_core::{
    run_closed_loop, DiscountedThroughput, GroundTruth, ISender, ISenderConfig, RunTrace,
};
use augur_elements::{build_model, GateSpec, ModelParams};
use augur_inference::{Belief, BeliefConfig, Hypothesis, ModelPrior};
use augur_sim::{BitRate, Bits, Dur, Ppm, SimRng, Time};
use augur_trace::{render, PlotConfig, Series};

fn truth_params() -> ModelParams {
    ModelParams {
        link_rate: BitRate::from_bps(12_000),
        cross_rate: BitRate::from_bps(4_200), // 0.35c: room to work with
        gate: GateSpec::AlwaysOn,
        loss: Ppm::ZERO,
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::new(48_000), // half-full backlog to drain
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    }
}

fn build_sender(latency_penalty: f64) -> ISender<ModelParams> {
    let prior = ModelPrior {
        link_rates: vec![BitRate::from_bps(10_000), BitRate::from_bps(12_000)],
        cross_fracs_ppm: vec![350_000, 700_000],
        losses: vec![Ppm::ZERO],
        buffer_capacities: vec![Bits::new(96_000)],
        fullness_step: Some(Bits::new(24_000)),
        mtts: Dur::from_secs(100),
        epoch: Dur::from_secs(1),
        gate_initial: vec![true],
        packet_size: Bits::from_bytes(1_500),
    };
    let hyps: Vec<Hypothesis<ModelParams>> = prior
        .grid()
        .into_iter()
        .map(|p| Hypothesis {
            net: build_model(p).net,
            meta: p,
            weight: 1.0,
        })
        .collect();
    let probe = build_model(truth_params());
    let belief = Belief::new(
        hyps,
        probe.entry,
        probe.rx_self,
        BeliefConfig {
            fold_loss_node: Some(probe.loss),
            ..BeliefConfig::default()
        },
    );
    let mut utility = DiscountedThroughput::with_alpha(1.0);
    utility.latency_penalty = latency_penalty;
    ISender::new(belief, Box::new(utility), ISenderConfig::default())
}

fn run(latency_penalty: f64) -> (RunTrace, f64) {
    let m = build_model(truth_params());
    let mut truth = GroundTruth {
        net: m.net,
        entry: m.entry,
        rx_self: m.rx_self,
        rng: SimRng::seed_from_u64(0x72),
    };
    let mut sender = build_sender(latency_penalty);
    let trace =
        run_closed_loop(&mut truth, &mut sender, Time::from_secs(120)).expect("belief died");
    // Mean cross-traffic delay in the second minute (steady state).
    let delays: Vec<f64> = trace
        .cross_deliveries
        .iter()
        .filter(|(_, t, _)| *t >= Time::from_secs(60))
        .map(|(seq, t, _)| {
            // Cross packets are emitted isochronously every 12000/4200 s.
            let sent = *seq as f64 * (12_000.0 / 4_200.0);
            t.as_secs_f64() - sent
        })
        .collect();
    let mean_delay = if delays.is_empty() {
        f64::NAN
    } else {
        delays.iter().sum::<f64>() / delays.len() as f64
    };
    (trace, mean_delay)
}

fn main() {
    println!("TXT2: latency-penalty utility drains the buffer before filling the link, 120 s");
    let (plain, plain_delay) = run(0.0);
    let (penalized, pen_delay) = run(0.5);

    let series = |name: &str, trace: &RunTrace| {
        let mut s = Series::new(name);
        for (i, (_, t)) in trace.sends.iter().enumerate() {
            s.push(t.as_secs_f64(), (i + 1) as f64);
        }
        s
    };
    let s_plain = series("alpha=1", &plain);
    let s_pen = series("alpha=1 + latency penalty", &penalized);
    println!(
        "\n{}",
        render(
            &[&s_plain, &s_pen],
            &PlotConfig {
                title: "TXT2: sequence number vs time (half-full buffer at t=0)".into(),
                ..PlotConfig::default()
            }
        )
    );
    save_csv("txt2_seq_vs_time", &[&s_plain, &s_pen]);

    let first_plain = plain.sends.first().map(|(_, t)| t.as_secs_f64());
    let first_pen = penalized.sends.first().map(|(_, t)| t.as_secs_f64());
    let early_plain = plain.send_rate(Time::ZERO, Time::from_secs(8));
    let early_pen = penalized.send_rate(Time::ZERO, Time::from_secs(8));
    let steady_pen = penalized.send_rate(Time::from_secs(60), Time::from_secs(120));
    println!("\n  first send: plain {first_plain:?}s, penalized {first_pen:?}s");
    println!("  rate 0-8s (backlog draining): plain {early_plain:.2}, penalized {early_pen:.2} pkt/s");
    println!("  penalized steady rate 60-120s: {steady_pen:.2} pkt/s");
    println!("  mean cross delay 60-120s: plain {plain_delay:.2}s, penalized {pen_delay:.2}s");

    println!("\nShape checks:");
    check(
        "penalized sender holds back while the backlog drains",
        early_pen < early_plain,
        format!("{early_pen:.2} < {early_plain:.2} pkt/s in 0-8s"),
    );
    check(
        "penalized sender still uses the residual link afterwards",
        steady_pen > 0.3,
        format!("{steady_pen:.2} pkt/s steady"),
    );
    check(
        "cross traffic sees lower latency under the penalty",
        pen_delay < plain_delay,
        format!("{pen_delay:.2}s vs {plain_delay:.2}s"),
    );
}
