#![forbid(unsafe_code)]
//! TAB1 — reproduce Figure 2's parameter table: prior belief vs actual,
//! and show the posterior concentrating on the actual values.
//!
//! "The ISENDER is initialized with a prior that includes, as one
//! possibility, the true value of most of the parameters" (§4). We run
//! the α = 1 sender for 120 s against the paper's ground truth and report
//! the posterior marginal of each parameter over time.
//!
//! The experiment is the `presets::tab1` scenario (also shipped as
//! `experiments/specs/tab1.toml`); this binary builds the exact truth
//! and sender that scenario describes via the scenario runner's helpers,
//! because the posterior snapshots need the belief mid-run — a
//! measurement the summary-only sweep path does not expose.

use augur_bench::{check, save_csv};
use augur_core::run_closed_loop;
use augur_scenario::{presets, spec_ground_truth, spec_isender};
use augur_sim::{BitRate, Bits, Dur, Ppm, Time};
use augur_trace::Series;

fn main() {
    println!("TAB1: prior vs actual (Figure 2 table), posterior over time\n");
    println!(
        "  {:<22} {:<28} {:>10}",
        "parameter", "prior belief", "actual"
    );
    println!(
        "  {:<22} {:<28} {:>10}",
        "c (link speed)", "10,000..=16,000 bps", "12,000"
    );
    println!(
        "  {:<22} {:<28} {:>10}",
        "r (cross rate)", "0.4c..=0.7c", "0.7c"
    );
    println!(
        "  {:<22} {:<28} {:>10}",
        "t (mean switch)", "100 s (believed)", "n/a"
    );
    println!(
        "  {:<22} {:<28} {:>10}",
        "p (loss rate)", "0.00..=0.20", "0.20"
    );
    println!(
        "  {:<22} {:<28} {:>10}",
        "buffer capacity", "72,000..=108,000 bits", "96,000"
    );
    println!(
        "  {:<22} {:<28} {:>10}",
        "initial fullness", "0..=capacity", "0"
    );

    // Run in 10 s stages so we can snapshot the posterior as it sharpens.
    let runs = presets::tab1(Dur::from_secs(120), 50_000).expand();
    let run = &runs[0];
    let mut truth = spec_ground_truth(&run.spec, run.seed);
    let mut sender = spec_isender(&run.spec);
    let mut p_c = Series::new("P(c=12000)");
    let mut p_r = Series::new("P(r=0.7c)");
    let mut p_p = Series::new("P(p=0.2)");
    let mut p_b = Series::new("P(buf=96000)");
    let stages: Vec<u64> = (1..=12).map(|k| k * 10).collect();
    let mut checkpoints = Vec::new();
    for &secs in &stages {
        run_closed_loop(&mut truth, &mut sender, Time::from_secs(secs)).expect("belief died");
        let t = secs as f64;
        let prob = |f: &dyn Fn(&augur_elements::ModelParams) -> bool| -> f64 {
            sender
                .belief
                .branches()
                .iter()
                .filter(|h| f(&h.meta))
                .map(|h| h.weight)
                .sum()
        };
        let c = prob(&|m| m.link_rate == BitRate::from_bps(12_000));
        let r = prob(&|m| m.cross_rate == BitRate::from_bps(8_400));
        let p = prob(&|m| m.loss == Ppm::from_prob(0.2));
        let b = prob(&|m| m.buffer_capacity == Bits::new(96_000));
        p_c.push(t, c);
        p_r.push(t, r);
        p_p.push(t, p);
        p_b.push(t, b);
        checkpoints.push((secs, c, r, p, b, sender.belief.branch_count()));
    }

    println!(
        "\n  {:>5} {:>12} {:>10} {:>10} {:>14} {:>10}",
        "t(s)", "P(c=12000)", "P(r=0.7c)", "P(p=0.2)", "P(buf=96000)", "branches"
    );
    for (t, c, r, p, b, n) in &checkpoints {
        println!("  {t:>5} {c:>12.3} {r:>10.3} {p:>10.3} {b:>14.3} {n:>10}");
    }
    save_csv("tab1_posterior_vs_time", &[&p_c, &p_r, &p_p, &p_b]);

    let last = checkpoints.last().unwrap();
    println!("\nShape checks:");
    check(
        "link speed identified (P > 0.95)",
        last.1 > 0.95,
        format!("P(c=12000) = {:.3} at {}s", last.1, last.0),
    );
    check(
        "cross rate identified (P > 0.8)",
        last.2 > 0.8,
        format!("P(r=0.7c) = {:.3}", last.2),
    );
    check(
        "loss rate concentrating on 0.2 (P > 0.5 among 5 values)",
        last.3 > 0.5,
        format!("P(p=0.2) = {:.3}", last.3),
    );
    check(
        "buffer capacity not excluded (P >= prior 0.25)",
        last.4 >= 0.2,
        format!("P(buf=96000) = {:.3}", last.4),
    );
    check(
        "prior pared down (paper: 'quickly pare down the prior')",
        last.5 < 4_000,
        format!("{} branches from 4,760 grid points", last.5),
    );
}
