//! TXT1 — §4's first claim: "The sender reaches a predictable, ideal
//! result in simple configurations, such as a single ISENDER connected to
//! a queue, drained by a throughput-limited link. It begins tentatively
//! if it is not sure of the link speed and initial buffer occupancy.
//! Once it has inferred those parameters, it simply sends at the link
//! speed from there on out."

use augur_bench::{check, save_csv};
use augur_core::{run_closed_loop, DiscountedThroughput, GroundTruth, ISender, ISenderConfig};
use augur_elements::{build_model, GateSpec, ModelParams};
use augur_inference::{Belief, BeliefConfig, Hypothesis, ModelPrior};
use augur_sim::{BitRate, Bits, Dur, Ppm, SimRng, Time};
use augur_trace::{render, PlotConfig, Series};

fn quiet_params(link_bps: u64, fullness: u64) -> ModelParams {
    ModelParams {
        link_rate: BitRate::from_bps(link_bps),
        cross_rate: BitRate::from_bps(link_bps * 7 / 10),
        gate: GateSpec::AlwaysOn,
        loss: Ppm::ZERO,
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::new(fullness),
        packet_size: Bits::from_bytes(1_500),
        cross_active: false,
    }
}

fn main() {
    println!("TXT1: single ISender on an unknown link (no cross traffic, no loss), 90 s");

    // Ground truth: c = 12,000 bps, buffer initially half full (48,000
    // bits) — both unknown to the sender.
    let truth_params = quiet_params(12_000, 48_000);
    let m = build_model(truth_params);
    let mut truth = GroundTruth {
        net: m.net,
        entry: m.entry,
        rx_self: m.rx_self,
        rng: SimRng::seed_from_u64(0x1),
    };

    // Prior: c in {10,12,14,16} kbps, fullness unknown in packet steps.
    let prior = ModelPrior {
        link_rates: (5..=8).map(|k| BitRate::from_bps(k * 2_000)).collect(),
        cross_fracs_ppm: vec![700_000],
        losses: vec![Ppm::ZERO],
        buffer_capacities: vec![Bits::new(96_000)],
        fullness_step: Some(Bits::new(12_000)),
        mtts: Dur::from_secs(100),
        epoch: Dur::from_secs(1),
        gate_initial: vec![true],
        packet_size: Bits::from_bytes(1_500),
    };
    let hyps: Vec<Hypothesis<ModelParams>> = prior
        .grid()
        .into_iter()
        .map(|mut p| {
            p.cross_active = false;
            Hypothesis {
                net: build_model(p).net,
                meta: p,
                weight: 1.0,
            }
        })
        .collect();
    let probe = build_model(quiet_params(12_000, 0));
    let belief = Belief::new(
        hyps,
        probe.entry,
        probe.rx_self,
        BeliefConfig {
            fold_loss_node: Some(probe.loss),
            ..BeliefConfig::default()
        },
    );
    let mut sender = ISender::new(
        belief,
        Box::new(DiscountedThroughput::with_alpha(1.0)),
        ISenderConfig::default(),
    );
    let trace = run_closed_loop(&mut truth, &mut sender, Time::from_secs(90)).expect("belief died");

    let mut seq = Series::new("sequence number");
    for (i, (_, t)) in trace.sends.iter().enumerate() {
        seq.push(t.as_secs_f64(), (i + 1) as f64);
    }
    println!(
        "\n{}",
        render(
            &[&seq],
            &PlotConfig {
                title: "TXT1: sequence number vs time (single unknown link)".into(),
                ..PlotConfig::default()
            }
        )
    );
    save_csv("txt1_seq_vs_time", &[&seq]);

    // The half-full backlog delays the first ACK past ~4 s; sends before
    // it reflect pure prior uncertainty (the "tentative" phase). The
    // window after it includes the catch-up burst once parameters are
    // known, which is not tentative behavior.
    let early = trace.send_rate(Time::ZERO, Time::from_secs(4));
    let steady = trace.send_rate(Time::from_secs(45), Time::from_secs(90));
    let p_c = sender
        .belief
        .marginal(|h| h.meta.link_rate)
        .iter()
        .find(|(r, _)| *r == BitRate::from_bps(12_000))
        .map(|(_, w)| *w)
        .unwrap_or(0.0);
    println!("\n  early rate (0-4s): {early:.2} pkt/s   steady rate (45-90s): {steady:.2} pkt/s");
    println!("  posterior P(c=12000) = {p_c:.3}");

    println!("\nShape checks:");
    check(
        "steady state sends at the link speed",
        (steady - 1.0).abs() < 0.15,
        format!("{steady:.2} pkt/s vs link 1.00"),
    );
    check(
        "begins tentatively under uncertainty",
        early < steady + 0.2,
        format!("early {early:.2} <= steady {steady:.2}"),
    );
    check(
        "link speed inferred",
        p_c > 0.95,
        format!("P(c=12000) = {p_c:.3}"),
    );
    check(
        "no packets wasted on overflows",
        trace
            .drops
            .iter()
            .filter(|d| d.packet.flow == augur_sim::FlowId::SELF)
            .count()
            == 0,
        "zero own-flow drops",
    );
}
