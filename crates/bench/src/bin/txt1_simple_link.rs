#![forbid(unsafe_code)]
//! TXT1 — §4's first claim: "The sender reaches a predictable, ideal
//! result in simple configurations, such as a single ISENDER connected to
//! a queue, drained by a throughput-limited link. It begins tentatively
//! if it is not sure of the link speed and initial buffer occupancy.
//! Once it has inferred those parameters, it simply sends at the link
//! speed from there on out."
//!
//! The experiment is the `presets::txt1` scenario — a quiet 12 kbit/s
//! link with a half-full buffer, neither known to the sender, and a
//! cross-free custom prior (also shipped as `experiments/specs/
//! txt1.toml`). This binary builds the scenario's truth and sender via
//! the scenario runner's helpers because the checks read the posterior
//! out of the belief after the run.

use augur_bench::{check, save_csv};
use augur_core::run_closed_loop;
use augur_scenario::{presets, spec_ground_truth, spec_isender};
use augur_sim::{BitRate, Dur, Time};
use augur_trace::{render, PlotConfig, Series};

fn main() {
    println!("TXT1: single ISender on an unknown link (no cross traffic, no loss), 90 s");

    let runs = presets::txt1(Dur::from_secs(90)).expand();
    let run = &runs[0];
    let mut truth = spec_ground_truth(&run.spec, run.seed);
    let mut sender = spec_isender(&run.spec);
    let trace = run_closed_loop(&mut truth, &mut sender, Time::from_secs(90)).expect("belief died");

    let mut seq = Series::new("sequence number");
    for (i, (_, t)) in trace.sends.iter().enumerate() {
        seq.push(t.as_secs_f64(), (i + 1) as f64);
    }
    println!(
        "\n{}",
        render(
            &[&seq],
            &PlotConfig {
                title: "TXT1: sequence number vs time (single unknown link)".into(),
                ..PlotConfig::default()
            }
        )
    );
    save_csv("txt1_seq_vs_time", &[&seq]);

    // The half-full backlog delays the first ACK past ~4 s; sends before
    // it reflect pure prior uncertainty (the "tentative" phase). The
    // window after it includes the catch-up burst once parameters are
    // known, which is not tentative behavior.
    let early = trace.send_rate(Time::ZERO, Time::from_secs(4));
    let steady = trace.send_rate(Time::from_secs(45), Time::from_secs(90));
    let p_c = sender
        .belief
        .marginal(|h| h.meta.link_rate)
        .iter()
        .find(|(r, _)| *r == BitRate::from_bps(12_000))
        .map(|(_, w)| *w)
        .unwrap_or(0.0);
    println!("\n  early rate (0-4s): {early:.2} pkt/s   steady rate (45-90s): {steady:.2} pkt/s");
    println!("  posterior P(c=12000) = {p_c:.3}");

    println!("\nShape checks:");
    check(
        "steady state sends at the link speed",
        (steady - 1.0).abs() < 0.15,
        format!("{steady:.2} pkt/s vs link 1.00"),
    );
    check(
        "begins tentatively under uncertainty",
        early < steady + 0.2,
        format!("early {early:.2} <= steady {steady:.2}"),
    );
    check(
        "link speed inferred",
        p_c > 0.95,
        format!("P(c=12000) = {p_c:.3}"),
    );
    check(
        "no packets wasted on overflows",
        trace
            .drops
            .iter()
            .filter(|d| d.packet.flow == augur_sim::FlowId::SELF)
            .count()
            == 0,
        "zero own-flow drops",
    );
}
