#![forbid(unsafe_code)]
//! FIG1 — reproduce Figure 1: "Round-trip time during a TCP download on
//! the Verizon LTE network" (bufferbloat).
//!
//! The paper measured a real LTE modem; we substitute the synthetic
//! cellular path of `augur_elements::cellular` (DESIGN.md §5): a deep
//! drop-tail buffer feeding a fading radio link whose stochastic losses
//! are hidden by link-layer ARQ. The experiment is the `presets::fig1`
//! scenario (a `TopologySpec::Cellular` TCP Reno run, also shipped as
//! `experiments/specs/fig1.toml`); this binary adds the log-axis RTT
//! plot and the shape checks EXPERIMENTS.md records.
//!
//! Shape targets: RTT starts near the propagation floor (~0.1 s) and
//! climbs beyond several seconds; max/min ratio ≥ 30×.

use augur_bench::{check, save_csv};
use augur_scenario::{presets, SweepRunner};
use augur_sim::{Dur, Time};
use augur_trace::{render, PlotConfig, Series};

fn main() {
    println!("FIG1: TCP Reno download over a synthetic LTE-like path, 250 s");
    let runs = presets::fig1(Dur::from_secs(250)).expand();
    // Goodput windows derive from the spec, not a second literal.
    let t_end = Time::ZERO + runs[0].spec.duration;
    let (report, artifacts) = SweepRunner::serial().run_traced(&runs);
    let trace = artifacts
        .into_iter()
        .next()
        .and_then(|a| a.into_tcp())
        .expect("cellular TCP runs produce a TcpTrace");
    let summary_row = &report.runs[0];

    let mut rtt = Series::new("rtt_seconds");
    for (t, r) in &trace.rtt_samples {
        rtt.push(t.as_secs_f64(), r.as_secs_f64());
    }
    println!(
        "\n{}",
        render(
            &[&rtt],
            &PlotConfig {
                title: "Figure 1: RTT during a TCP download (log y)".into(),
                log_y: true,
                ..PlotConfig::default()
            }
        )
    );
    save_csv("fig1_rtt_vs_time", &[&rtt]);

    let samples: Vec<f64> = rtt.values().collect();
    let summary = augur_trace::summarize(&samples);
    println!(
        "\n  RTT: min {:.3}s  median {:.3}s  p95 {:.3}s  max {:.3}s  ({} samples)",
        summary.min, summary.median, summary.p95, summary.max, summary.n
    );
    println!(
        "  goodput {:.0} bit/s over {} segments ({} retransmitted, {} timeouts)",
        trace.mean_goodput_bps(t_end),
        trace.segments_sent,
        trace.retransmissions,
        trace.timeouts
    );
    println!(
        "  sweep row: p50 {:.3}s  p95 {:.3}s  {} overflow drops",
        summary_row.delay_p50_s, summary_row.delay_p95_s, summary_row.overflow_drops
    );

    println!("\nShape checks:");
    check(
        "RTT floor near propagation delay",
        summary.min < 0.2,
        format!("min RTT {:.3}s (floor 0.053s)", summary.min),
    );
    check(
        "RTT climbs into the seconds (bufferbloat)",
        summary.max > 3.0,
        format!("max RTT {:.3}s", summary.max),
    );
    check(
        "RTT blow-up ratio >= 30x (paper: ~100x)",
        trace.rtt_blowup() >= 30.0,
        format!("max/min = {:.0}x", trace.rtt_blowup()),
    );
    check(
        "loss fully hidden by link-layer ARQ (no stochastic drops)",
        trace
            .drops
            .iter()
            .all(|d| d.reason == augur_elements::DropReason::BufferFull),
        format!("{} drops, all buffer overflows", trace.drops.len()),
    );
}
