//! `sweep` — run any preset parameter sweep from the command line.
//!
//! ```sh
//! cargo run --release --bin sweep -- fig3
//! cargo run --release --bin sweep -- fig3 --duration 60 --branches 2000 --workers 1
//! cargo run --release --bin sweep -- scaling --jsonl
//! cargo run --release --bin sweep -- smoke --replicates 8
//! ```
//!
//! Presets: `fig3` (α sweep, Figure 3), `txt2` (latency penalty, §4),
//! `scaling` (exact vs particle across prior sizes, EXT-C), `smoke` (a
//! quick exact-vs-particle grid for CI), `coexist-fairness` (two
//! ISenders sharing a bottleneck, EXT-A) and `coexist-vs-tcp` (ISender
//! vs AIMD / TCP Reno / CUBIC, EXT-B). The preset may be given
//! positionally or via `--preset`. Every run's seed derives from
//! `(base seed, run index)`, so the CSV is byte-identical for any
//! `--workers` value — `--workers 1` is the reference execution.

use augur_bench::out_dir;
use augur_scenario::{presets, SweepGrid, SweepRunner};
use augur_sim::Dur;
use std::fs;
use std::io::BufWriter;
use std::process::exit;

struct Options {
    preset: String,
    workers: Option<usize>,
    duration: Option<u64>,
    branches: Option<usize>,
    replicates: Option<usize>,
    jsonl: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--preset] <fig3|txt2|scaling|smoke|coexist-fairness|coexist-vs-tcp> \
         [--workers N] [--duration SECS] [--branches B] [--replicates K] [--jsonl]"
    );
    exit(2)
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1).peekable();
    // The preset names the sweep; accept it positionally or as --preset.
    let preset = match args.peek().map(String::as_str) {
        Some("--preset") => {
            args.next();
            args.next().unwrap_or_else(|| usage())
        }
        Some(p) if !p.starts_with("--") => args.next().unwrap(),
        _ => usage(),
    };
    let mut opts = Options {
        preset,
        workers: None,
        duration: None,
        branches: None,
        replicates: None,
        jsonl: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        fn numeric<T: std::str::FromStr>(name: &str, raw: String) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("bad value {raw:?} for {name}");
                usage()
            })
        }
        match flag.as_str() {
            "--workers" => {
                let n: usize = numeric("--workers", value("--workers"));
                if n == 0 {
                    eprintln!("--workers must be at least 1");
                    usage()
                }
                opts.workers = Some(n);
            }
            "--duration" => opts.duration = Some(numeric("--duration", value("--duration"))),
            "--branches" => opts.branches = Some(numeric("--branches", value("--branches"))),
            "--replicates" => {
                opts.replicates = Some(numeric("--replicates", value("--replicates")))
            }
            "--jsonl" => opts.jsonl = true,
            _ => usage(),
        }
    }
    opts
}

/// Branch cap, overridable for quick runs: `--branches` or
/// `AUGUR_BRANCHES=2000`.
fn branch_budget(opts: &Options) -> usize {
    opts.branches
        .or_else(|| {
            std::env::var("AUGUR_BRANCHES")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(50_000)
}

/// Reject flags the chosen preset does not consume — a silently ignored
/// parameter yields a sweep that does not match what was asked for.
fn reject_unused(opts: &Options, duration: bool, branches: bool, replicates: bool) {
    let mut bad = Vec::new();
    if opts.duration.is_some() && !duration {
        bad.push("--duration");
    }
    if opts.branches.is_some() && !branches {
        bad.push("--branches");
    }
    if opts.replicates.is_some() && !replicates {
        bad.push("--replicates");
    }
    if !bad.is_empty() {
        eprintln!("preset {:?} does not take {}", opts.preset, bad.join(", "));
        usage()
    }
}

fn build_grid(opts: &Options) -> SweepGrid {
    match opts.preset.as_str() {
        "fig3" => {
            reject_unused(opts, true, true, false);
            presets::fig3(
                Dur::from_secs(opts.duration.unwrap_or(300)),
                branch_budget(opts),
            )
        }
        "txt2" => {
            reject_unused(opts, true, false, false);
            presets::txt2(Dur::from_secs(opts.duration.unwrap_or(120)))
        }
        "scaling" => {
            reject_unused(opts, false, false, false);
            presets::ext_scaling(vec![101, 1_001, 10_001], 1_000)
        }
        "smoke" => {
            reject_unused(opts, true, false, true);
            presets::smoke(
                Dur::from_secs(opts.duration.unwrap_or(20)),
                opts.replicates.unwrap_or(4),
            )
        }
        "coexist-fairness" => {
            reject_unused(opts, true, true, true);
            presets::coexist_fairness(
                Dur::from_secs(opts.duration.unwrap_or(60)),
                opts.replicates.unwrap_or(4),
                branch_budget(opts),
            )
        }
        "coexist-vs-tcp" => {
            reject_unused(opts, true, true, true);
            presets::coexist_vs_tcp(
                Dur::from_secs(opts.duration.unwrap_or(60)),
                opts.replicates.unwrap_or(2),
                branch_budget(opts),
            )
        }
        other => {
            eprintln!("unknown preset {other:?}");
            usage()
        }
    }
}

fn main() {
    let opts = parse_args();
    let grid = build_grid(&opts);
    let runs = grid.expand();
    let runner = match opts.workers {
        Some(n) => SweepRunner::with_workers(n),
        None => SweepRunner::parallel(),
    }
    .verbose();
    println!(
        "SWEEP {}: {} runs ({}), {} workers, base seed {:#x}",
        opts.preset,
        runs.len(),
        grid.axes
            .iter()
            .map(|a| format!("{}×{}", a.name(), a.len()))
            .collect::<Vec<_>>()
            .join(" "),
        runner.workers,
        grid.base.base_seed
    );

    let report = runner.run(&runs);
    println!("\n{}", report.render_text());

    let csv_path = out_dir().join(format!("{}_sweep.csv", opts.preset));
    let file = fs::File::create(&csv_path).expect("create sweep csv");
    report
        .write_csv(BufWriter::new(file))
        .expect("write sweep csv");
    println!("  wrote {}", csv_path.display());
    if opts.jsonl {
        let path = out_dir().join(format!("{}_sweep.jsonl", opts.preset));
        let file = fs::File::create(&path).expect("create sweep jsonl");
        report
            .write_jsonl(BufWriter::new(file))
            .expect("write sweep jsonl");
        println!("  wrote {}", path.display());
    }
}
