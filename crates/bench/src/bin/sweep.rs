#![forbid(unsafe_code)]
//! `sweep` — run any preset or spec-file parameter sweep from the
//! command line.
//!
//! ```sh
//! cargo run --release --bin sweep -- fig3
//! cargo run --release --bin sweep -- fig3 --duration 60 --branches 2000 --workers 1
//! cargo run --release --bin sweep -- --spec experiments/specs/fig3.toml
//! cargo run --release --bin sweep -- --spec my_experiment.toml --check
//! cargo run --release --bin sweep -- --export-specs experiments/specs
//! cargo run --release --bin sweep -- scaling --jsonl
//! ```
//!
//! Presets (see `augur_scenario::presets::NAMES`): `fig1`, `fig3`,
//! `tab1`, `txt1`, `txt2`, `scaling`, `smoke`, `coexist-fairness`,
//! `coexist-vs-tcp`, `ext-aqm`, and `replay-cellular`. The preset may be
//! given positionally or via `--preset`; `--spec <file.toml>` loads the
//! same grid shape from a spec file instead (`--export-specs <dir>`
//! writes the canonical file for every preset, `--export-traces <dir>`
//! the canonical CSV for every shipped synthetic rate trace). `--check`
//! parses, validates, and expands the grid without running it.
//!
//! `--duration`, `--branches`, and `--replicates` override the grid the
//! same way for presets and spec files, and are rejected when the grid
//! has nothing to apply them to (a silently ignored parameter would
//! yield a sweep that does not match what was asked for). Spec-file
//! parse and validation failures exit with code 2 — distinct from a run
//! failure — and name the offending file, line, and column.
//!
//! Every run's seed derives from `(base seed, run index)`, so the CSV is
//! byte-identical for any `--workers` value — `--workers 1` is the
//! reference execution.

use augur_bench::out_dir;
use augur_scenario::{grid_to_toml, load_grid, presets, traces, Axis, SweepGrid, SweepRunner};
use augur_sim::Dur;
use std::fs;
use std::io::BufWriter;
use std::path::PathBuf;
use std::process::exit;

/// Where the grid comes from.
enum Source {
    Preset(String),
    Spec(PathBuf),
}

struct Options {
    source: Option<Source>,
    export_specs: Option<PathBuf>,
    export_traces: Option<PathBuf>,
    check: bool,
    workers: Option<usize>,
    duration: Option<u64>,
    branches: Option<usize>,
    replicates: Option<usize>,
    jsonl: bool,
    trace_events: Option<PathBuf>,
    belief_snapshots: Option<f64>,
    progress: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--preset] <{}>\n\
         \x20      sweep --spec <file.toml>\n\
         \x20      sweep --export-specs <dir>\n\
         \x20      sweep --export-traces <dir>\n\
         \x20 options: [--check] [--workers N] [--duration SECS] [--branches B] \
         [--replicates K] [--jsonl] [--trace-events [DIR]] [--belief-snapshots SECS] \
         [--progress]\n\
         \x20   --workers N: worker threads, at least 1; values above the \
         expanded run count are clamped to it (extra workers would idle)\n\
         \x20   --trace-events [DIR]: record each run's structured event log as \
         DIR/run-<index>.jsonl (default DIR: <out>/<name>_events)\n\
         \x20   --belief-snapshots SECS: emit posterior snapshots every SECS of sim \
         time into the event logs (implies --trace-events output)\n\
         \x20   --progress: completed-run ticker on stderr (report bytes unchanged)",
        presets::NAMES.join("|")
    );
    exit(2)
}

fn parse_args() -> Options {
    parse_from(std::env::args().skip(1))
}

fn parse_from(args: impl Iterator<Item = String>) -> Options {
    let mut args = args.peekable();
    let mut opts = Options {
        source: None,
        export_specs: None,
        export_traces: None,
        check: false,
        workers: None,
        duration: None,
        branches: None,
        replicates: None,
        jsonl: false,
        trace_events: None,
        belief_snapshots: None,
        progress: false,
    };
    // The preset names the sweep; accept it positionally as the first
    // argument or anywhere as --preset/--spec.
    if matches!(args.peek(), Some(p) if !p.starts_with("--")) {
        opts.source = Some(Source::Preset(args.next().unwrap()));
    }
    while let Some(flag) = args.next() {
        // `--trace-events` takes an optional directory: consume the next
        // argument only when it does not look like another flag.
        if flag == "--trace-events" {
            let dir = match args.peek() {
                Some(v) if !v.starts_with("--") => PathBuf::from(args.next().unwrap()),
                _ => PathBuf::new(), // empty = default <out>/<name>_events
            };
            opts.trace_events = Some(dir);
            continue;
        }
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        fn numeric<T: std::str::FromStr>(name: &str, raw: String) -> T {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("bad value {raw:?} for {name}");
                usage()
            })
        }
        let set_source = |opts: &mut Options, source: Source| {
            if opts.source.is_some() {
                eprintln!("give exactly one of a preset or --spec");
                usage()
            }
            opts.source = Some(source);
        };
        match flag.as_str() {
            "--preset" => {
                let name = value("--preset");
                set_source(&mut opts, Source::Preset(name));
            }
            "--spec" => {
                let path = value("--spec");
                set_source(&mut opts, Source::Spec(PathBuf::from(path)));
            }
            "--export-specs" => opts.export_specs = Some(PathBuf::from(value("--export-specs"))),
            "--export-traces" => opts.export_traces = Some(PathBuf::from(value("--export-traces"))),
            "--check" => opts.check = true,
            "--workers" => {
                let n: usize = numeric("--workers", value("--workers"));
                if n == 0 {
                    eprintln!("--workers must be at least 1");
                    usage()
                }
                opts.workers = Some(n);
            }
            "--duration" => opts.duration = Some(numeric("--duration", value("--duration"))),
            "--branches" => opts.branches = Some(numeric("--branches", value("--branches"))),
            "--replicates" => {
                opts.replicates = Some(numeric("--replicates", value("--replicates")))
            }
            "--jsonl" => opts.jsonl = true,
            "--belief-snapshots" => {
                let secs: f64 = numeric("--belief-snapshots", value("--belief-snapshots"));
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("--belief-snapshots must be a positive number of seconds");
                    usage()
                }
                opts.belief_snapshots = Some(secs);
            }
            "--progress" => opts.progress = true,
            _ => {
                eprintln!("unknown flag {flag:?}");
                usage()
            }
        }
    }
    opts
}

/// Apply `--duration` / `--branches` / `--replicates` to the grid — the
/// same semantics for presets and spec files — rejecting any override
/// the grid cannot consume.
fn apply_overrides(grid: &mut SweepGrid, opts: &Options, label: &str) {
    if let Some(secs) = opts.duration {
        grid.base.duration = Dur::from_secs(secs);
    }
    // AUGUR_BRANCHES is ambient; only an explicit --branches on a grid
    // with no branch cap is a hard authoring error.
    let env_branches = std::env::var("AUGUR_BRANCHES")
        .ok()
        .and_then(|s| s.parse().ok());
    if let Some(b) = opts.branches.or(env_branches) {
        let mut applied = false;
        if let Some(cap) = grid.base.sender.max_branches_mut() {
            *cap = b;
            applied = true;
        }
        for axis in &mut grid.axes {
            if let Axis::Sender(senders) = axis {
                for s in senders {
                    if let Some(cap) = s.max_branches_mut() {
                        *cap = b;
                        applied = true;
                    }
                }
            }
        }
        if !applied && opts.branches.is_some() {
            eprintln!("{label} does not take --branches (no exact-belief sender in the grid)");
            usage()
        }
    }
    if let Some(k) = opts.replicates {
        let mut applied = false;
        for axis in &mut grid.axes {
            if let Axis::Seeds(count) = axis {
                *count = k;
                applied = true;
            }
        }
        if !applied {
            eprintln!("{label} does not take --replicates (no seeds axis in the grid)");
            usage()
        }
    }
}

/// Write the canonical spec file for every preset into `dir`.
fn export_specs(dir: &PathBuf) {
    fs::create_dir_all(dir).expect("create spec dir");
    for name in presets::NAMES {
        let grid = presets::by_name(name).expect("registry names resolve");
        let path = dir.join(format!("{name}.toml"));
        fs::write(&path, grid_to_toml(&grid)).expect("write spec file");
        println!("  wrote {}", path.display());
    }
}

/// Write the canonical CSV for every shipped synthetic trace into `dir`.
fn export_traces(dir: &PathBuf) {
    fs::create_dir_all(dir).expect("create trace dir");
    for name in traces::NAMES {
        let samples = traces::by_name(name).expect("registry names resolve");
        let path = dir.join(format!("{name}.csv"));
        fs::write(&path, traces::trace_to_csv(name, &samples)).expect("write trace file");
        println!("  wrote {}", path.display());
    }
}

fn main() {
    let opts = parse_args();
    if opts.export_specs.is_some() || opts.export_traces.is_some() {
        // Export writes the canonical default artifacts; a run flag here
        // would be silently ignored, so reject the combination.
        if opts.source.is_some()
            || opts.check
            || opts.workers.is_some()
            || opts.duration.is_some()
            || opts.branches.is_some()
            || opts.replicates.is_some()
            || opts.jsonl
            || opts.trace_events.is_some()
            || opts.belief_snapshots.is_some()
            || opts.progress
        {
            eprintln!("--export-specs/--export-traces take no preset, spec, or run flags");
            usage()
        }
        if let Some(dir) = &opts.export_specs {
            export_specs(dir);
        }
        if let Some(dir) = &opts.export_traces {
            export_traces(dir);
        }
        return;
    }
    let (mut grid, label) = match &opts.source {
        Some(Source::Preset(name)) => match presets::by_name(name) {
            Some(grid) => (grid, format!("preset {name:?}")),
            None => {
                eprintln!("unknown preset {name:?}");
                usage()
            }
        },
        Some(Source::Spec(path)) => match load_grid(path) {
            Ok(grid) => (grid, format!("spec {}", path.display())),
            Err(e) => {
                // Parse/validation failure: exit 2, distinct from a run
                // failure, naming the file and position. IO errors carry
                // no position (and already name the path).
                if e.line == 0 {
                    eprintln!("{}", e.message);
                } else {
                    eprintln!("{}:{e}", path.display());
                }
                exit(2)
            }
        },
        None => usage(),
    };
    apply_overrides(&mut grid, &opts, &label);
    // Observability flags arm the base spec before expansion, so every
    // expanded run inherits them (a spec file's [observe] table arms the
    // same fields without any flag).
    if opts.trace_events.is_some() {
        grid.base.observe.trace_events = true;
    }
    if let Some(secs) = opts.belief_snapshots {
        grid.base.observe.snapshot_every = Some(Dur::from_secs_f64(secs));
    }

    // Expansion applies every axis to the base spec, so it catches the
    // grid-level authoring errors the decoder cannot see in isolation
    // (an alpha axis over a TCP sender, a peer axis without a coexist
    // workload, …). Run it under a silenced panic hook whether or not
    // --check was asked for: an invalid grid is always an exit-2
    // authoring error, never a run failure.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let expanded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| grid.expand()));
    std::panic::set_hook(prev_hook);
    let runs = match expanded {
        Ok(runs) => runs,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("grid expansion panicked");
            eprintln!("{label}: invalid grid: {msg}");
            exit(2)
        }
    };

    if opts.check {
        println!(
            "OK {label}: scenario {:?}, {} runs ({}), base seed {:#x}",
            grid.base.name,
            runs.len(),
            if grid.axes.is_empty() {
                "no axes".to_string()
            } else {
                grid.axes
                    .iter()
                    .map(|a| format!("{}×{}", a.name(), a.len()))
                    .collect::<Vec<_>>()
                    .join(" ")
            },
            grid.base.base_seed
        );
        return;
    }
    // Clamp the worker count to the run count: a sweep never benefits
    // from more threads than runs, and silently spawning idle workers
    // would misreport the execution shape.
    let configured = match opts.workers {
        Some(n) => SweepRunner::with_workers(n),
        None => SweepRunner::parallel(),
    };
    let workers = configured.effective_workers(runs.len());
    if opts.workers.is_some_and(|n| n > workers) {
        eprintln!(
            "note: --workers {} exceeds the {} expanded runs; using {workers}",
            opts.workers.unwrap(),
            runs.len()
        );
    }
    // The ticker replaces the per-run lines — both are stderr-only, but
    // interleaving a carriage-return ticker with full lines is noise.
    let runner = if opts.progress {
        SweepRunner::with_workers(workers).progress()
    } else {
        SweepRunner::with_workers(workers).verbose()
    };
    println!(
        "SWEEP {}: {} runs ({}), {} workers, base seed {:#x}",
        grid.base.name,
        runs.len(),
        grid.axes
            .iter()
            .map(|a| format!("{}×{}", a.name(), a.len()))
            .collect::<Vec<_>>()
            .join(" "),
        runner.workers,
        grid.base.base_seed
    );

    let observing = grid.base.observe.active();
    let (report, event_logs) = if observing {
        let (report, events) = runner.run_observed(&runs);
        (report, Some(events))
    } else {
        (runner.run(&runs), None)
    };
    println!("\n{}", report.render_text());

    let csv_path = out_dir().join(format!("{}_sweep.csv", grid.base.name));
    let file = fs::File::create(&csv_path).expect("create sweep csv");
    report
        .write_csv(BufWriter::new(file))
        .expect("write sweep csv");
    println!("  wrote {}", csv_path.display());
    if opts.jsonl {
        let path = out_dir().join(format!("{}_sweep.jsonl", grid.base.name));
        let file = fs::File::create(&path).expect("create sweep jsonl");
        report
            .write_jsonl(BufWriter::new(file))
            .expect("write sweep jsonl");
        println!("  wrote {}", path.display());
    }
    if let Some(event_logs) = event_logs {
        let dir = match &opts.trace_events {
            Some(d) if !d.as_os_str().is_empty() => d.clone(),
            _ => out_dir().join(format!("{}_events", grid.base.name)),
        };
        fs::create_dir_all(&dir).expect("create events dir");
        for (i, events) in event_logs.iter().enumerate() {
            let path = dir.join(format!("run-{i}.jsonl"));
            fs::write(&path, augur_obs::to_jsonl(events)).expect("write event log");
        }
        println!(
            "  wrote {} event logs ({} events) to {}",
            event_logs.len(),
            event_logs.iter().map(Vec::len).sum::<usize>(),
            dir.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> Options {
        parse_from(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_positional_preset_and_workers() {
        let opts = parse(&["fig3", "--workers", "8", "--duration", "30"]);
        assert!(matches!(opts.source, Some(Source::Preset(ref p)) if p == "fig3"));
        assert_eq!(opts.workers, Some(8));
        assert_eq!(opts.duration, Some(30));
    }

    #[test]
    fn parses_spec_and_flags() {
        let opts = parse(&["--spec", "x.toml", "--check", "--jsonl"]);
        assert!(matches!(opts.source, Some(Source::Spec(_))));
        assert!(opts.check);
        assert!(opts.jsonl);
        assert_eq!(opts.workers, None);
    }

    #[test]
    fn workers_clamp_to_run_count() {
        // The clamp main() applies: requested workers never exceed the
        // expanded run count (and never fall below one).
        let runner = SweepRunner::with_workers(64);
        assert_eq!(runner.effective_workers(4), 4);
        assert_eq!(runner.effective_workers(64), 64);
        assert_eq!(runner.effective_workers(1000), 64);
        assert_eq!(runner.effective_workers(0), 1);
    }
}
