#![forbid(unsafe_code)]
//! EXT-D — §3.5 names active queue management and non-FIFO scheduling as
//! missing elements; we implement RED and CoDel as BUFFER variants and
//! show the in-network fix to Figure 1's bufferbloat: the same TCP Reno
//! download over the same deep buffer, with the queue discipline swapped.
//!
//! The experiment is the `presets::ext_aqm` scenario grid — the FIG1
//! cellular download with a queue-discipline sweep axis (also shipped as
//! `experiments/specs/ext-aqm.toml`); this binary adds the RTT series
//! export and the shape checks.
//!
//! Expected shape: drop-tail shows multi-second RTTs; CoDel holds the
//! p95 RTT near its 100 ms interval; RED sits in between; goodput stays
//! comparable (within ~2× of drop-tail).

use augur_bench::{check, save_csv};
use augur_scenario::{presets, SweepRunner};
use augur_sim::{Dur, Time};
use augur_tcp::TcpTrace;
use augur_trace::{summarize, Series, Summary};

fn main() {
    println!("EXT-D: TCP Reno over the LTE-like path, queue discipline swapped, 120 s\n");
    let runs = presets::ext_aqm(Dur::from_secs(120)).expand();
    // Goodput windows derive from the spec, not a second literal.
    let t_end = Time::ZERO + runs[0].spec.duration;
    let (_, artifacts) = SweepRunner::parallel().run_traced(&runs);

    let mut results: Vec<(String, TcpTrace, Summary)> = Vec::new();
    for (run, artifact) in runs.iter().zip(artifacts) {
        let label = run.point();
        let trace = artifact.into_tcp().expect("cellular TCP runs leave traces");
        let rtts: Vec<f64> = trace
            .rtt_samples
            .iter()
            .map(|(_, r)| r.as_secs_f64())
            .collect();
        let summary = summarize(&rtts);
        println!(
            "  {label:<16} median RTT {:>7.3}s  p95 {:>7.3}s  max {:>7.3}s  goodput {:>9.0} bps  drops {:>4}",
            summary.median,
            summary.p95,
            summary.max,
            trace.mean_goodput_bps(t_end),
            trace.drops.len(),
        );
        results.push((label, trace, summary));
    }

    let by_queue = |q: &str| -> &(String, TcpTrace, Summary) {
        results
            .iter()
            .find(|(label, ..)| label == &format!("queue={q}"))
            .unwrap_or_else(|| panic!("queue={q} run present"))
    };
    let (_, droptail_trace, droptail) = by_queue("drop-tail");
    let (_, red_trace, red) = by_queue("red");
    let (_, codel_trace, codel) = by_queue("codel");

    // Series for the figure: RTT over time per discipline.
    let series = |name: &str, trace: &TcpTrace| {
        let mut s = Series::new(name);
        for (t, r) in &trace.rtt_samples {
            s.push(t.as_secs_f64(), r.as_secs_f64());
        }
        s
    };
    let s1 = series("droptail", droptail_trace);
    let s2 = series("red", red_trace);
    let s3 = series("codel", codel_trace);
    save_csv("ext_aqm_rtt", &[&s1, &s2, &s3]);

    println!("\nShape checks:");
    check(
        "drop-tail bloats (p95 RTT in the seconds)",
        droptail.p95 > 2.0,
        format!("p95 {:.3}s", droptail.p95),
    );
    check(
        "CoDel tames the standing queue (p95 < 1/4 of drop-tail)",
        codel.p95 < droptail.p95 / 4.0,
        format!("{:.3}s vs {:.3}s", codel.p95, droptail.p95),
    );
    check(
        "RED improves on drop-tail",
        red.p95 < droptail.p95,
        format!("{:.3}s vs {:.3}s", red.p95, droptail.p95),
    );
    let gp = |t: &TcpTrace| t.mean_goodput_bps(t_end);
    check(
        "CoDel keeps comparable goodput (>= half of drop-tail)",
        gp(codel_trace) >= gp(droptail_trace) / 2.0,
        format!("{:.0} vs {:.0} bps", gp(codel_trace), gp(droptail_trace)),
    );
}
