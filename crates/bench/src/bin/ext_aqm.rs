//! EXT-D — §3.5 names active queue management and non-FIFO scheduling as
//! missing elements; we implement RED and CoDel as BUFFER variants and
//! show the in-network fix to Figure 1's bufferbloat: the same TCP Reno
//! download over the same deep buffer, with the queue discipline swapped.
//!
//! Expected shape: drop-tail shows multi-second RTTs; CoDel holds the
//! p95 RTT near its 100 ms interval; RED sits in between; goodput stays
//! comparable (within ~2× of drop-tail).

use augur_bench::{check, save_csv};
use augur_elements::{Buffer, CellularParams, DelayEl, Element, Link, NetworkBuilder, ReceiverEl};
use augur_sim::{Bits, Dur, Ppm, Time};
use augur_tcp::{TcpConfig, TcpRunner, TcpTrace};
use augur_trace::{summarize, Series, Summary};

fn run(label: &str, buffer: Buffer) -> (TcpTrace, Summary) {
    let params = CellularParams::lte_like();
    // Rebuild the cellular path with the chosen queue discipline.
    let mut b = NetworkBuilder::new();
    let buf = b.add(Element::Buffer(buffer));
    let link = b.add(Element::Link(Link::new(
        params.rate.clone(),
        params.arq_loss,
        params.arq_retry_delay,
    )));
    let delay = b.add(Element::Delay(DelayEl::new(params.propagation)));
    let rx = b.add(Element::Receiver(ReceiverEl));
    b.connect(buf, link);
    b.connect(link, delay);
    b.connect(delay, rx);
    let net = b.build();

    let mut runner = TcpRunner::new(net, buf, rx, TcpConfig::default(), 0xA0);
    let trace = runner.run(Time::from_secs(120));
    let rtts: Vec<f64> = trace
        .rtt_samples
        .iter()
        .map(|(_, r)| r.as_secs_f64())
        .collect();
    let summary = summarize(&rtts);
    println!(
        "  {label:<10} median RTT {:>7.3}s  p95 {:>7.3}s  max {:>7.3}s  goodput {:>9.0} bps  drops {:>4}",
        summary.median,
        summary.p95,
        summary.max,
        trace.mean_goodput_bps(Time::from_secs(120)),
        trace.drops.len(),
    );
    (trace, summary)
}

fn main() {
    println!("EXT-D: TCP Reno over the LTE-like path, queue discipline swapped, 120 s\n");
    let capacity = CellularParams::lte_like().buffer_capacity;

    let (droptail_trace, droptail) = run("drop-tail", Buffer::drop_tail(capacity));
    let (red_trace, red) = run(
        "RED",
        Buffer::red(
            capacity,
            Bits::new(capacity.as_u64() / 12), // min_th
            Bits::new(capacity.as_u64() / 4),  // max_th
            Ppm::from_prob(0.1),
            9, // EWMA weight 1/512
        ),
    );
    let (codel_trace, codel) = run(
        "CoDel",
        Buffer::codel(capacity, Dur::from_millis(5), Dur::from_millis(100)),
    );

    // Series for the figure: RTT over time per discipline.
    let series = |name: &str, trace: &TcpTrace| {
        let mut s = Series::new(name);
        for (t, r) in &trace.rtt_samples {
            s.push(t.as_secs_f64(), r.as_secs_f64());
        }
        s
    };
    let s1 = series("droptail", &droptail_trace);
    let s2 = series("red", &red_trace);
    let s3 = series("codel", &codel_trace);
    save_csv("ext_aqm_rtt", &[&s1, &s2, &s3]);

    println!("\nShape checks:");
    check(
        "drop-tail bloats (p95 RTT in the seconds)",
        droptail.p95 > 2.0,
        format!("p95 {:.3}s", droptail.p95),
    );
    check(
        "CoDel tames the standing queue (p95 < 1/4 of drop-tail)",
        codel.p95 < droptail.p95 / 4.0,
        format!("{:.3}s vs {:.3}s", codel.p95, droptail.p95),
    );
    check(
        "RED improves on drop-tail",
        red.p95 < droptail.p95,
        format!("{:.3}s vs {:.3}s", red.p95, droptail.p95),
    );
    let gp = |t: &TcpTrace| t.mean_goodput_bps(Time::from_secs(120));
    check(
        "CoDel keeps comparable goodput (>= half of drop-tail)",
        gp(&codel_trace) >= gp(&droptail_trace) / 2.0,
        format!("{:.0} vs {:.0} bps", gp(&codel_trace), gp(&droptail_trace)),
    );
}
