#![forbid(unsafe_code)]
//! EXT-C — the paper's scalability remark (§3.2): "This
//! rejection-sampling approach is limited computationally; we have found
//! that maintaining more than a few million possible discrete channel
//! configurations is impractical. A more sophisticated and scalable
//! scheme would use the approximate techniques of Bayesian inference …"
//!
//! We sweep the hypothesis count of the exact engine across four decades
//! and compare against the particle filter at a fixed 1,000-particle
//! budget, measuring wall time per simulated second and the
//! posterior-mean error on the link rate. The sweep is the
//! `presets::ext_scaling` grid — engine × prior size under the scripted
//! 2 s ping workload — executed *serially* so the wall-clock comparison
//! is not distorted by core contention; this binary adds the scaling
//! shape checks.

use augur_bench::{check, out_dir};
use augur_scenario::{presets, Axis, RunStatus, RunSummary, SweepRunner};
use std::fs;
use std::io::BufWriter;

/// Seed replicates per (engine, prior size) cell: particle survival at
/// large priors is seed luck, so each cell is measured a few times and
/// aggregated over the survivors.
const REPLICATES: usize = 3;

/// Mean wall and rate error over a cell's surviving replicates, if any.
fn survivors(cell: &[RunSummary]) -> Option<(f64, f64)> {
    let ok: Vec<&RunSummary> = cell.iter().filter(|r| r.status == RunStatus::Ok).collect();
    if ok.is_empty() {
        return None;
    }
    let n = ok.len() as f64;
    Some((
        ok.iter().map(|r| r.wall_s).sum::<f64>() / n,
        ok.iter().map(|r| r.rate_err_bps).sum::<f64>() / n,
    ))
}

fn main() {
    println!("EXT-C: exact enumeration vs particle filter, 30 s of inference\n");
    let sizes = vec![101usize, 1_001, 10_001, 100_001];
    let grid = presets::ext_scaling(sizes.clone(), 1_000).axis(Axis::Seeds(REPLICATES));
    let runs = grid.expand();
    let report = SweepRunner::serial().run(&runs);
    // Group replicates by what each run actually was — the spec carries
    // the engine and prior size, so axis ordering cannot mislabel cells.
    let cell_of = |sender: &str, n: usize| -> Vec<RunSummary> {
        runs.iter()
            .zip(&report.runs)
            .filter(|(run, _)| run.spec.sender.label() == sender && run.spec.prior.size() == n)
            .map(|(_, summary)| summary.clone())
            .collect()
    };
    let exact: Vec<Vec<RunSummary>> = sizes.iter().map(|&n| cell_of("isender-exact", n)).collect();
    let particle: Vec<Vec<RunSummary>> = sizes
        .iter()
        .map(|&n| cell_of("isender-particle", n))
        .collect();
    assert!(
        exact.iter().chain(&particle).all(|c| c.len() == REPLICATES),
        "every (engine, prior size) cell must have its replicates"
    );
    let duration_s = report.runs[0].duration_s;

    println!(
        "  {:>12} {:>14} {:>16} {:>12}",
        "hypotheses", "wall (s)", "us per hyp-sec", "rate err bps"
    );
    let mut exact_walls = Vec::new();
    for (n, cell) in sizes.iter().zip(&exact) {
        let (wall, err) = survivors(cell).expect("exact engine never degenerates here");
        println!(
            "  {:>12} {:>14.3} {:>16.2} {:>12.1}",
            n,
            wall,
            wall * 1e6 / (*n as f64 * duration_s),
            err
        );
        exact_walls.push((wall, err));
    }

    println!("\n  particle filter, fixed 1,000-particle budget (mean over surviving replicates):");
    println!(
        "  {:>12} {:>14} {:>12} {:>10}",
        "prior size", "wall (s)", "rate err", "outcome"
    );
    let mut particle_cells = Vec::new();
    for (n, cell) in sizes.iter().zip(&particle) {
        match survivors(cell) {
            Some((wall, err)) => {
                let ok = cell.iter().filter(|r| r.status == RunStatus::Ok).count();
                println!(
                    "  {:>12} {:>14.3} {:>12.1} {:>7}/{REPLICATES} ok",
                    n, wall, err, ok
                );
                particle_cells.push(Some((wall, err)));
            }
            // With exact-time matching, a particle survives only if it
            // sits on the true grid point; 1,000 particles over a prior
            // much larger than the budget lose coverage — a measured
            // limitation of the bootstrap filter the paper's "belief
            // compression" remark anticipates.
            None => {
                println!("  {n:>12} {:>14} {:>12} {:>10}", "-", "-", "degenerate");
                particle_cells.push(None);
            }
        }
    }

    let path = out_dir().join("ext_scaling_sweep.csv");
    let file = fs::File::create(&path).expect("create csv");
    report
        .write_csv(BufWriter::new(file))
        .expect("write sweep csv");
    println!("\n  wrote {}", path.display());

    println!("\nShape checks:");
    let (n0, w0) = (sizes[0], exact_walls[0].0);
    let (n2, w2) = (sizes[2], exact_walls[2].0);
    let scale = (w2 / w0) / (n2 as f64 / n0 as f64);
    check(
        "exact cost grows ~linearly while the population survives",
        (0.2..5.0).contains(&scale),
        format!("{n0}→{n2} hypotheses: {w0:.3}s→{w2:.3}s (per-hyp ratio {scale:.2})"),
    );
    let per_hyp_sec = w2 / (n2 as f64 * duration_s);
    check(
        "extrapolated: millions of hypotheses are impractical (paper §3.2)",
        per_hyp_sec * 2e6 > 0.5,
        format!(
            "~{:.1}s of wall per simulated second at 2M hypotheses",
            per_hyp_sec * 2e6
        ),
    );
    check(
        "exact posterior locates the link rate",
        exact_walls.iter().all(|(_, err)| *err < 1_000.0),
        "posterior means within 1 kbps of truth",
    );
    let ok_walls: Vec<f64> = particle_cells
        .iter()
        .filter_map(|c| c.map(|(w, _)| w))
        .collect();
    check(
        "particle cost flat across prior sizes (where it survives)",
        ok_walls.len() >= 2
            && ok_walls.iter().cloned().fold(f64::MIN, f64::max)
                < 5.0 * ok_walls.iter().cloned().fold(f64::MAX, f64::min).max(1e-4),
        format!("walls: {ok_walls:?}"),
    );
    let accurate = particle_cells
        .iter()
        .filter_map(|c| c.map(|(_, err)| err))
        .all(|err| err < 1_000.0);
    check(
        "particle filter accurate where coverage suffices",
        accurate,
        "posterior means within 1 kbps of truth",
    );
    check(
        "bootstrap filter degenerates when prior >> particle budget",
        particle
            .iter()
            .any(|cell| cell.iter().all(|r| r.status == RunStatus::BeliefDied)),
        "exact-match likelihood needs coverage (motivates belief compression)",
    );
}
