//! EXT-C — the paper's scalability remark (§3.2): "This
//! rejection-sampling approach is limited computationally; we have found
//! that maintaining more than a few million possible discrete channel
//! configurations is impractical. A more sophisticated and scalable
//! scheme would use the approximate techniques of Bayesian inference …"
//!
//! We sweep the hypothesis count of the exact engine across four decades
//! and compare one belief-update step against the particle filter at a
//! fixed budget, measuring wall time per simulated second and the
//! posterior-mean error on the link rate.

use augur_bench::{check, save_csv};
use augur_elements::{build_model, GateSpec, ModelParams, Step};
use augur_inference::{
    Belief, BeliefConfig, Hypothesis, Observation, ParticleConfig, ParticleFilter,
};
use augur_sim::{BitRate, Bits, FlowId, Packet, Ppm, SimRng, Time};
use augur_trace::Series;
use std::time::Instant;

/// A prior with exactly `n` hypotheses: link rates on a fine grid around
/// the truth (12,000 bps), everything else pinned.
fn fine_prior(n: usize) -> Vec<Hypothesis<ModelParams>> {
    (0..n)
        .map(|i| {
            // 8,000..16,000 bps in n steps; includes 12,000 when n is odd.
            let bps = 8_000 + (i as u64 * 8_000) / (n.max(2) as u64 - 1);
            let params = ModelParams {
                link_rate: BitRate::from_bps(bps.max(1)),
                cross_rate: BitRate::from_bps(bps * 7 / 10),
                gate: GateSpec::AlwaysOn,
                loss: Ppm::ZERO,
                buffer_capacity: Bits::new(96_000),
                initial_fullness: Bits::ZERO,
                packet_size: Bits::from_bytes(1_500),
                cross_active: true,
            };
            Hypothesis {
                net: build_model(params).net,
                meta: params,
                weight: 1.0,
            }
        })
        .collect()
}

/// Scripted 30 s drive: send every 2 s, collect ground-truth ACKs, feed
/// `update`. Returns wall seconds spent inside `update`.
fn drive<F: FnMut(Time, &[Observation], Option<Packet>)>(mut update: F) -> f64 {
    let truth_params = ModelParams {
        link_rate: BitRate::from_bps(12_000),
        cross_rate: BitRate::from_bps(8_400),
        gate: GateSpec::AlwaysOn,
        loss: Ppm::ZERO,
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::ZERO,
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    };
    let mut truth = build_model(truth_params);
    let mut rng = SimRng::seed_from_u64(0xE57);
    let mut seq = 0u64;
    let mut wall = 0.0;
    for s in 0..=30u64 {
        let t = Time::from_secs(s);
        truth.net.run_until_sampled(t, &mut rng);
        let acks: Vec<Observation> = truth
            .net
            .take_deliveries()
            .into_iter()
            .filter(|(n, d)| *n == truth.rx_self && d.packet.flow == FlowId::SELF)
            .map(|(_, d)| Observation {
                seq: d.packet.seq,
                at: d.at,
            })
            .collect();
        truth.net.take_drops();
        let send = if s % 2 == 0 && s < 30 {
            let pkt = Packet::new(FlowId::SELF, seq, Bits::from_bytes(1_500), t);
            seq += 1;
            Some(pkt)
        } else {
            None
        };
        let start = Instant::now();
        update(t, &acks, send);
        wall += start.elapsed().as_secs_f64();
        if let Some(pkt) = send {
            truth.net.inject(truth.entry, pkt);
            while let Step::Pending(spec) = truth.net.run_until(t) {
                let pick = usize::from(rng.bernoulli(spec.p1));
                truth.net.resolve(pick);
            }
        }
    }
    wall
}

fn main() {
    println!("EXT-C: exact enumeration vs particle filter, 30 s of inference\n");
    let probe = build_model(ModelParams {
        link_rate: BitRate::from_bps(12_000),
        cross_rate: BitRate::from_bps(8_400),
        gate: GateSpec::AlwaysOn,
        loss: Ppm::ZERO,
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::ZERO,
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    });

    let mut cost = Series::new("exact_wall_seconds");
    let mut err = Series::new("exact_rate_error_bps");
    println!(
        "  {:>12} {:>14} {:>16} {:>12}",
        "hypotheses", "wall (s)", "us per hyp-sec", "rate err bps"
    );
    let sizes = [101usize, 1_001, 10_001, 100_001];
    let mut exact_walls = Vec::new();
    for &n in &sizes {
        let mut belief = Belief::new(
            fine_prior(n),
            probe.entry,
            probe.rx_self,
            BeliefConfig {
                fold_loss_node: Some(probe.loss),
                max_branches: n * 2,
                ..BeliefConfig::default()
            },
        );
        let wall = drive(|t, acks, send| {
            belief.advance(t, acks).expect("belief died");
            if let Some(pkt) = send {
                belief.inject(pkt);
            }
        });
        let mean = belief.expected(|h| h.meta.link_rate.as_bps() as f64);
        let e = (mean - 12_000.0).abs();
        println!(
            "  {:>12} {:>14.3} {:>16.2} {:>12.1}",
            n,
            wall,
            wall * 1e6 / (n as f64 * 30.0),
            e
        );
        cost.push(n as f64, wall);
        err.push(n as f64, e);
        exact_walls.push((n, wall));
    }

    // Particle filter at a fixed 1,000-particle budget across prior sizes:
    // cost should stay flat where the exact engine's grows.
    println!("\n  particle filter, fixed 1,000-particle budget:");
    println!(
        "  {:>12} {:>14} {:>12} {:>10}",
        "prior size", "wall (s)", "rate err", "outcome"
    );
    let mut pf_results = Vec::new();
    for &n in &sizes {
        let pf_prior = fine_prior(n);
        let mut pf = ParticleFilter::from_prior(
            &pf_prior,
            probe.entry,
            probe.rx_self,
            ParticleConfig {
                n_particles: 1_000,
                resample_frac: 0.5,
                fold_loss_node: Some(probe.loss),
                own_flow: FlowId::SELF,
            },
            7,
        );
        let mut died = false;
        let wall = drive(|t, acks, send| {
            if died {
                return;
            }
            match pf.advance(t, acks) {
                Ok(_) => {
                    if let Some(pkt) = send {
                        pf.inject(pkt);
                    }
                }
                Err(_) => died = true,
            }
        });
        if died {
            // With exact-time matching, a particle survives only if it
            // sits on the true grid point; 1,000 particles over a prior
            // much larger than the budget lose coverage — a measured
            // limitation of the bootstrap filter the paper's "belief
            // compression" remark anticipates.
            println!("  {n:>12} {:>14} {:>12} {:>10}", "-", "-", "degenerate");
            pf_results.push((n, None));
        } else {
            let mean = pf.expected(|h| h.meta.link_rate.as_bps() as f64);
            println!(
                "  {:>12} {:>14.3} {:>12.1} {:>10}",
                n,
                wall,
                (mean - 12_000.0).abs(),
                "ok"
            );
            pf_results.push((n, Some((wall, mean))));
        }
    }
    save_csv("ext_scaling", &[&cost, &err]);

    println!("\nShape checks:");
    let (n0, w0) = exact_walls[0];
    let (n2, w2) = exact_walls[2];
    let scale = (w2 / w0) / (n2 as f64 / n0 as f64);
    check(
        "exact cost grows ~linearly while the population survives",
        (0.2..5.0).contains(&scale),
        format!("{n0}→{n2} hypotheses: {w0:.3}s→{w2:.3}s (per-hyp ratio {scale:.2})"),
    );
    let per_hyp_sec = w2 / (n2 as f64 * 30.0);
    check(
        "extrapolated: millions of hypotheses are impractical (paper §3.2)",
        per_hyp_sec * 2e6 > 0.5,
        format!(
            "~{:.1}s of wall per simulated second at 2M hypotheses",
            per_hyp_sec * 2e6
        ),
    );
    let ok_walls: Vec<f64> = pf_results
        .iter()
        .filter_map(|(_, r)| r.map(|(w, _)| w))
        .collect();
    check(
        "particle cost flat across prior sizes (where it survives)",
        ok_walls.len() >= 2
            && ok_walls.iter().cloned().fold(f64::MIN, f64::max)
                < 5.0 * ok_walls.iter().cloned().fold(f64::MAX, f64::min).max(1e-4),
        format!("walls: {ok_walls:?}"),
    );
    let accurate = pf_results
        .iter()
        .filter_map(|(_, r)| r.map(|(_, m)| m))
        .all(|m| (m - 12_000.0).abs() < 1_000.0);
    check(
        "particle filter accurate where coverage suffices",
        accurate,
        "posterior means within 1 kbps of truth",
    );
    check(
        "bootstrap filter degenerates when prior >> particle budget",
        pf_results.iter().any(|(_, r)| r.is_none()),
        "exact-match likelihood needs coverage (motivates belief compression)",
    );
}
