#![forbid(unsafe_code)]
//! EXT-A — §3.5's first open question: "we have not yet experimented with
//! any networks that contain more than one ISENDER … whether starting
//! with the same or different assumptions … will be of great importance."
//!
//! A thin wrapper over the `coexist-fairness` scenario preset: two
//! ISenders (same coexistence prior, same α = 1 utility) share one
//! 24 kbit/s bottleneck through the multi-agent loop
//! (`augur_core::run_multi_agent`). Each models the other as an
//! isochronous pinger — a misspecification, handled by the
//! belief-restart protocol. Reported: per-flow throughput, Jain's
//! fairness index, and the restart counts (a direct measurement of how
//! badly the pinger model fits an adaptive peer).

use augur_bench::{check, out_dir};
use augur_scenario::{presets, SweepRunner};
use augur_sim::Dur;
use std::fs;
use std::io::BufWriter;

fn main() {
    println!("EXT-A: two ISenders sharing a 24 kbit/s bottleneck, 200 s\n");
    let grid = presets::coexist_fairness(Dur::from_secs(200), 1, 50_000);
    let runs = grid.expand();
    let link_bps = runs[0]
        .spec
        .topology
        .model("ext_fairness")
        .link_rate
        .as_bps();
    let report = SweepRunner::serial().run(&runs);
    let r = &report.runs[0];

    let (ra, rb) = (r.goodput_bps, r.goodput_b_bps);
    let (restarts_a, restarts_b) = (
        r.restarts_a.expect("coexist run reports restarts"),
        r.restarts_b.expect("coexist run reports restarts"),
    );
    println!("  flow A: {ra:.0} bit/s ({restarts_a} belief restarts)");
    println!("  flow B: {rb:.0} bit/s ({restarts_b} belief restarts)");
    println!(
        "  combined: {:.0} bit/s of {link_bps} ({:.0}%)",
        ra + rb,
        (ra + rb) / link_bps as f64 * 100.0
    );
    println!("  Jain fairness index: {:.3}", r.jain);

    let csv_path = out_dir().join("ext_fairness.csv");
    let file = fs::File::create(&csv_path).expect("create csv");
    report.write_csv(BufWriter::new(file)).expect("write csv");
    println!("  wrote {}", csv_path.display());

    println!("\nShape checks:");
    check(
        "both senders make progress",
        ra > 1_000.0 && rb > 1_000.0,
        format!("{ra:.0} / {rb:.0} bit/s"),
    );
    check(
        "link not overdriven",
        ra + rb <= link_bps as f64 * 1.05,
        format!("{:.0} <= {link_bps}", ra + rb),
    );
    check(
        "rough fairness (Jain >= 0.7)",
        r.jain >= 0.7,
        format!("{:.3}", r.jain),
    );
    check(
        "misspecification measured: restarts occurred (open question of §3.5)",
        restarts_a + restarts_b > 0,
        format!("{} total restarts", restarts_a + restarts_b),
    );
}
