//! EXT-A — §3.5's first open question: "we have not yet experimented with
//! any networks that contain more than one ISENDER … whether starting
//! with the same or different assumptions … will be of great importance."
//!
//! Two ISenders (same prior, same α = 1 utility) share one 24 kbit/s
//! bottleneck. Each models the other as an isochronous pinger — a
//! misspecification, handled by the belief-restart protocol
//! (`augur_bench::coexist`). Reported: per-flow throughput, Jain's
//! fairness index, and the restart counts (a direct measurement of how
//! badly the pinger model fits an adaptive peer).

use augur_bench::check;
use augur_bench::coexist::{
    build_two_flow, coexist_belief, run_coexistence, Agent, RestartingSender,
};
use augur_core::{DiscountedThroughput, ISenderConfig};
use augur_sim::{BitRate, Bits, Ppm, Time};

fn main() {
    println!("EXT-A: two ISenders sharing a 24 kbit/s bottleneck, 200 s\n");
    let link_bps = 24_000;
    let buffer_bits = 96_000;
    let mut truth = build_two_flow(
        BitRate::from_bps(link_bps),
        Bits::new(buffer_bits),
        Ppm::ZERO,
        0xFA1,
    );
    let make = || {
        Box::new(RestartingSender::new(
            Box::new(move || coexist_belief(link_bps, buffer_bits)),
            Box::new(DiscountedThroughput::with_alpha(1.0)),
            ISenderConfig::default(),
        ))
    };
    let mut a = Agent::Model(make());
    let mut b = Agent::Model(make());
    let t_end = Time::from_secs(200);
    let (bits_a, bits_b) = run_coexistence(&mut truth, &mut a, &mut b, t_end);

    let (ra, rb) = (
        bits_a as f64 / t_end.as_secs_f64(),
        bits_b as f64 / t_end.as_secs_f64(),
    );
    let jain = (ra + rb).powi(2) / (2.0 * (ra * ra + rb * rb)).max(1e-9);
    let (restarts_a, restarts_b) = match (&a, &b) {
        (Agent::Model(x), Agent::Model(y)) => (x.restarts, y.restarts),
        _ => unreachable!(),
    };
    println!("  flow A: {ra:.0} bit/s ({restarts_a} belief restarts)");
    println!("  flow B: {rb:.0} bit/s ({restarts_b} belief restarts)");
    println!(
        "  combined: {:.0} bit/s of {link_bps} ({:.0}%)",
        ra + rb,
        (ra + rb) / link_bps as f64 * 100.0
    );
    println!("  Jain fairness index: {jain:.3}");

    println!("\nShape checks:");
    check(
        "both senders make progress",
        ra > 1_000.0 && rb > 1_000.0,
        format!("{ra:.0} / {rb:.0} bit/s"),
    );
    check(
        "link not overdriven",
        ra + rb <= link_bps as f64 * 1.05,
        format!("{:.0} <= {link_bps}", ra + rb),
    );
    check(
        "rough fairness (Jain >= 0.7)",
        jain >= 0.7,
        format!("{jain:.3}"),
    );
    check(
        "misspecification measured: restarts occurred (open question of §3.5)",
        restarts_a + restarts_b > 0,
        format!("{} total restarts", restarts_a + restarts_b),
    );
}
