#![forbid(unsafe_code)]
//! FIG3 — reproduce Figure 3: "Results of varying priority to cross
//! traffic".
//!
//! The ISender runs for 300 s over the Figure-2 network. Cross traffic
//! (70 % of the 12 kbit/s link, hidden behind 20 % stochastic loss) is ON
//! for 0–100 s, OFF for 100–200 s, ON for 200–300 s — switched by a
//! deterministic square wave, while the sender *believes* the gate is
//! memoryless with a 100 s mean. One run per α ∈ {0.9, 1.0, 2.5, 5}.
//!
//! The sweep itself is the `presets::fig3` scenario grid executed by the
//! parallel `SweepRunner`; this binary only adds the Figure-3 plot and
//! the shape checks EXPERIMENTS.md records:
//! * α < 1 sends at the (discovered) link speed regardless of cross
//!   traffic and floods the shared buffer;
//! * α = 1 fills the residual ~30 % while cross traffic is on, 100 % when
//!   off;
//! * α = 2.5 and α = 5 are progressively more deferential and slower to
//!   conclude the cross traffic stopped;
//! * no buffer overflows for α ≥ 1;
//! * every sender starts tentatively while the prior is wide.

use augur_bench::{check, save_csv};
use augur_core::RunTrace;
use augur_scenario::{presets, SweepRunner};
use augur_sim::{Dur, Time};
use augur_trace::{render, PlotConfig, Series};

fn main() {
    let t_end = Time::from_secs(300);
    let max_branches = branch_budget();
    println!("FIG3: α sweep over [0.9, 1.0, 2.5, 5.0], 300 s, branch cap {max_branches}");

    let grid = presets::fig3(Dur::from_secs(300), max_branches);
    let runs = grid.expand();
    let (report, traces) = SweepRunner::parallel().verbose().run_traced(&runs);
    let results: Vec<(f64, RunTrace)> = runs
        .iter()
        .zip(traces)
        .map(|(run, trace)| {
            (
                run.spec.sender.alpha().expect("fig3 senders carry α"),
                trace
                    .into_closed_loop()
                    .expect("closed-loop ISender runs produce traces"),
            )
        })
        .collect();

    // Figure 3: sequence number vs time.
    let mut series: Vec<Series> = Vec::new();
    for (alpha, trace) in &results {
        let mut s = Series::new(format!("alpha={alpha}"));
        for (i, (_, t)) in trace.sends.iter().enumerate() {
            s.push(t.as_secs_f64(), (i + 1) as f64);
        }
        series.push(s);
    }
    let refs: Vec<&Series> = series.iter().collect();
    println!(
        "\n{}",
        render(
            &refs,
            &PlotConfig {
                title:
                    "Figure 3: sequence number vs time (cross ON 0-100s, OFF 100-200s, ON 200-300s)"
                        .into(),
                ..PlotConfig::default()
            }
        )
    );
    save_csv("fig3_seq_vs_time", &refs);

    // Phase rates and overflow counts, straight from the sweep summaries.
    println!(
        "\n  {:>6} {:>12} {:>12} {:>12} {:>10}",
        "alpha", "rate 0-100", "rate 100-200", "rate 200-300", "overflows"
    );
    let mut phase_rates = Vec::new();
    for ((alpha, trace), summary) in results.iter().zip(&report.runs) {
        let r1 = trace.send_rate(Time::ZERO, Time::from_secs(100));
        let r2 = trace.send_rate(Time::from_secs(100), Time::from_secs(200));
        let r3 = trace.send_rate(Time::from_secs(200), t_end);
        let overflows = summary.overflow_drops as usize;
        println!("  {alpha:>6} {r1:>12.3} {r2:>12.3} {r3:>12.3} {overflows:>10}");
        phase_rates.push((*alpha, r1, r2, r3, overflows));
    }

    // Shape checks against the paper.
    println!("\nShape checks:");
    let link_rate = 1.0; // packets per second at 12 kbit/s with 1500 B
    let get = |a: f64| phase_rates.iter().find(|(x, ..)| *x == a).unwrap();

    let (_, r1_low, _, _, ov_low) = *get(0.9);
    check(
        "alpha<1 sends at link speed despite cross traffic",
        (r1_low - link_rate).abs() < 0.25,
        format!("rate {r1_low:.2} vs link {link_rate:.2} pkt/s"),
    );
    check(
        "alpha<1 floods the buffer (overflows observed)",
        ov_low > 0,
        format!("{ov_low} overflow drops"),
    );

    let (_, r1_one, r2_one, _, _) = *get(1.0);
    check(
        "alpha=1 fills the residual ~30% while cross is on",
        r1_one > 0.15 && r1_one < 0.75,
        format!("rate {r1_one:.2} pkt/s (residual 0.30)"),
    );
    check(
        "alpha=1 uses the whole link when cross is off",
        (r2_one - link_rate).abs() < 0.3,
        format!("rate {r2_one:.2} pkt/s"),
    );

    for &(a, expect_less_than) in &[(2.5, r1_one + 0.1), (5.0, r1_one + 0.1)] {
        let (_, r1, ..) = *get(a);
        check(
            &format!("alpha={a} defers at least as much as alpha=1 (cross on)"),
            r1 <= expect_less_than,
            format!("rate {r1:.2} vs alpha=1 {r1_one:.2}"),
        );
    }

    for &a in &[2.5, 5.0] {
        let (_, _, _, _, ov) = *get(a);
        check(
            &format!("alpha={a} never causes a buffer overflow"),
            ov == 0,
            format!("{ov} overflow drops"),
        );
    }
    // Paper: "Except for the case when α < 1, the ISENDER never causes a
    // buffer overflow." Our α = 1 run incurs overflows during the 200 s
    // cross-traffic return: the myopic planner finds standing queues
    // weakly free under the paper's Θ = 10⁶ ms discount, fills the buffer
    // during the quiet phase, and the full queue then hides the returning
    // cross traffic from the ACK timings (an observability blackout).
    // See EXPERIMENTS.md FIG3 "Deviations". We check the ordering instead.
    let (_, _, _, _, ov_one) = *get(1.0);
    check(
        "alpha=1 overflows less than alpha<1 (paper: zero; see EXPERIMENTS.md)",
        ov_one < ov_low,
        format!("alpha=1: {ov_one} vs alpha=0.9: {ov_low}"),
    );

    // Deference to the *possibility* the cross traffic is back: ramp after
    // 100 s should be slower for larger α.
    let ramp = |a: f64| {
        let (_, trace) = results.iter().find(|(x, _)| *x == a).unwrap();
        trace.send_rate(Time::from_secs(100), Time::from_secs(130))
    };
    let (ramp1, ramp5) = (ramp(1.0), ramp(5.0));
    check(
        "alpha=5 is slower than alpha=1 to conclude cross stopped",
        ramp5 <= ramp1 + 0.05,
        format!("100-130s rate: alpha=5 {ramp5:.2} vs alpha=1 {ramp1:.2}"),
    );
}

/// Branch cap, overridable for quick runs: `AUGUR_BRANCHES=2000`.
fn branch_budget() -> usize {
    std::env::var("AUGUR_BRANCHES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50_000)
}
