//! Co-existence harness: two adaptive senders sharing one bottleneck —
//! the question §3.5 leaves open ("we have not yet experimented with any
//! networks that contain more than one ISENDER, or any network elements
//! performing TCP").
//!
//! # Misspecification and belief restarts
//!
//! An ISender models its competition as an isochronous PINGER. Another
//! *adaptive* sender is not isochronous, so sooner or later every
//! hypothesis mispredicts an acknowledgment time and the belief dies —
//! exactly the failure mode one expects from exact-time conditioning
//! under model misspecification. The harness handles this with a
//! **restart protocol**:
//!
//! * rebuild the belief from the prior, with the *time origin shifted to
//!   the restart instant* — the unknown "initial fullness" grid then
//!   absorbs whatever is sitting in the real queue (including the
//!   sender's own still-unacknowledged packets);
//! * acknowledgments for pre-restart packets are ignored (the fresh
//!   belief knows nothing about them);
//! * restarts are counted and reported — they are a *result*, not noise:
//!   they measure how badly the pinger model fits an adaptive peer.

use augur_core::{Action, ISender, ISenderConfig, WakeOutcome};
use augur_elements::{
    build_model, Buffer, Diverter, Element, GateSpec, Link, Loss, ModelParams, Network,
    NetworkBuilder, NodeId, ReceiverEl, Step,
};
use augur_inference::{Belief, BeliefConfig, Hypothesis, Observation};
use augur_sim::{BitRate, Bits, Dur, FlowId, Packet, Ppm, SimRng, Time};

/// Flow id of the first sender in the shared ground truth.
pub const FLOW_A: FlowId = FlowId(0);
/// Flow id of the second sender.
pub const FLOW_B: FlowId = FlowId(1);

/// A shared bottleneck with one receiver per flow.
pub struct TwoFlowTruth {
    /// The network.
    pub net: Network,
    /// Injection point (the shared buffer).
    pub entry: NodeId,
    /// Receiver of `FLOW_A`.
    pub rx_a: NodeId,
    /// Receiver of `FLOW_B`.
    pub rx_b: NodeId,
    /// Sampling RNG.
    pub rng: SimRng,
}

/// Build `buffer → link → loss → diverter(A) → rx_a / rx_b`.
pub fn build_two_flow(link: BitRate, buffer: Bits, loss: Ppm, seed: u64) -> TwoFlowTruth {
    let mut b = NetworkBuilder::new();
    let buf = b.add(Element::Buffer(Buffer::drop_tail(buffer)));
    let link_n = b.add(Element::Link(Link::constant(link)));
    let loss_n = b.add(Element::Loss(Loss { p: loss }));
    let div = b.add(Element::Diverter(Diverter { flow: FLOW_A }));
    let rx_a = b.add(Element::Receiver(ReceiverEl));
    let rx_b = b.add(Element::Receiver(ReceiverEl));
    b.connect(buf, link_n);
    b.connect(link_n, loss_n);
    b.connect(loss_n, div);
    b.connect(div, rx_a);
    b.connect_alt(div, rx_b);
    TwoFlowTruth {
        net: b.build(),
        entry: buf,
        rx_a,
        rx_b,
        rng: SimRng::seed_from_u64(seed),
    }
}

/// The prior an ISender holds about a shared link whose competition is
/// adaptive: link speed known-ish, competitor modeled as an always-on
/// pinger of unknown rate (including "absent"), queue fullness unknown.
pub fn coexist_belief(link_bps: u64, buffer_bits: u64) -> Belief<ModelParams> {
    let mut hyps = Vec::new();
    for frac_ppm in [0u32, 125_000, 250_000, 375_000, 500_000, 625_000, 750_000] {
        for fill_steps in 0..=(buffer_bits / 12_000) {
            let params = ModelParams {
                link_rate: BitRate::from_bps(link_bps),
                cross_rate: BitRate::from_bps(
                    ((link_bps as u128 * frac_ppm as u128 / 1_000_000) as u64).max(1),
                ),
                gate: GateSpec::AlwaysOn,
                loss: Ppm::ZERO,
                buffer_capacity: Bits::new(buffer_bits),
                initial_fullness: Bits::new(fill_steps * 12_000),
                packet_size: Bits::from_bytes(1_500),
                cross_active: frac_ppm > 0,
            };
            hyps.push(Hypothesis {
                net: build_model(params).net,
                meta: params,
                weight: 1.0,
            });
        }
    }
    let probe = build_model(ModelParams {
        link_rate: BitRate::from_bps(link_bps),
        cross_rate: BitRate::from_bps(link_bps / 2),
        gate: GateSpec::AlwaysOn,
        loss: Ppm::ZERO,
        buffer_capacity: Bits::new(buffer_bits),
        initial_fullness: Bits::ZERO,
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    });
    Belief::new(
        hyps,
        probe.entry,
        probe.rx_self,
        BeliefConfig {
            fold_loss_node: Some(probe.loss),
            ..BeliefConfig::default()
        },
    )
}

/// An ISender plus the restart machinery.
pub struct RestartingSender {
    inner: ISender<ModelParams>,
    build: Box<dyn Fn() -> Belief<ModelParams>>,
    /// Absolute time of the current belief's origin.
    t0: Time,
    /// First (absolute) sequence number the current belief knows about.
    base_seq: u64,
    /// Next absolute sequence number to transmit.
    next_abs_seq: u64,
    /// Number of belief restarts so far.
    pub restarts: usize,
    /// Absolute send log.
    pub sends: Vec<(u64, Time)>,
}

impl RestartingSender {
    /// Wrap a fresh sender.
    pub fn new(
        build: Box<dyn Fn() -> Belief<ModelParams>>,
        utility: Box<dyn augur_core::Utility + Send>,
        cfg: ISenderConfig,
    ) -> RestartingSender {
        RestartingSender {
            inner: ISender::new(build(), utility, cfg),
            build,
            t0: Time::ZERO,
            base_seq: 0,
            next_abs_seq: 0,
            restarts: 0,
            sends: Vec::new(),
        }
    }

    fn utility_clone_hack(&self) -> Box<dyn augur_core::Utility + Send> {
        // The experiments all use DiscountedThroughput(α = 1).
        Box::new(augur_core::DiscountedThroughput::with_alpha(1.0))
    }

    /// Wake with absolute-time acknowledgments; returns packets to inject
    /// (absolute seq/flow applied by the caller) and the next wake time.
    pub fn on_wake(&mut self, now: Time, acks: &[Observation]) -> WakeOutcome {
        // Shift to belief-relative time; drop pre-restart ACKs.
        let rel_acks: Vec<Observation> = acks
            .iter()
            .filter(|o| o.seq >= self.base_seq)
            .map(|o| Observation {
                seq: o.seq - self.base_seq,
                at: o.at - self.t0.since(Time::ZERO),
            })
            .collect();
        let rel_now = now - self.t0.since(Time::ZERO);
        match self.inner.on_wake(rel_now, &rel_acks) {
            Ok(mut outcome) => {
                for pkt in &mut outcome.sent {
                    // Re-base to absolute identifiers for the caller.
                    *pkt = Packet::new(pkt.flow, pkt.seq + self.base_seq, pkt.size, now);
                    self.sends.push((pkt.seq, now));
                }
                self.next_abs_seq = self.inner.next_seq() + self.base_seq;
                outcome.next_wake += self.t0.since(Time::ZERO);
                outcome
            }
            Err(_) => {
                // Misspecification caught us: restart the belief with the
                // clock re-zeroed at `now`.
                self.restarts += 1;
                self.t0 = now;
                self.base_seq = self.next_abs_seq;
                let cfg = self.inner.config().clone();
                self.inner = ISender::new((self.build)(), self.utility_clone_hack(), cfg);
                WakeOutcome {
                    sent: Vec::new(),
                    next_wake: now + Dur::from_millis(500),
                    decision: augur_core::Decision {
                        action: Action::Idle,
                        expected_utility: 0.0,
                        evaluations: Vec::new(),
                    },
                }
            }
        }
    }
}

/// An agent sharing the bottleneck.
pub enum Agent {
    /// A restarting ISender (its packets carry `flow`).
    Model(Box<RestartingSender>),
    /// A minimal AIMD window sender (TCP-like competitor for EXT-B):
    /// additive increase per delivery, halve on an RTO-style gap.
    Aimd(AimdSender),
}

/// A compact AIMD sender: window in packets, ACK-clocked.
pub struct AimdSender {
    /// Congestion window (packets).
    pub window: f64,
    next_seq: u64,
    acked: u64,
    /// Outstanding = next_seq - acked.
    timeout: Dur,
    last_progress: Time,
    /// Absolute send log.
    pub sends: Vec<(u64, Time)>,
}

impl AimdSender {
    /// A fresh AIMD sender with the given RTO-like gap detector.
    pub fn new(timeout: Dur) -> AimdSender {
        AimdSender {
            window: 1.0,
            next_seq: 0,
            acked: 0,
            timeout,
            last_progress: Time::ZERO,
            sends: Vec::new(),
        }
    }

    /// Process deliveries of our flow; returns packets to send now.
    pub fn on_event(&mut self, now: Time, delivered: usize) -> Vec<u64> {
        if delivered > 0 {
            self.acked += delivered as u64;
            self.window += delivered as f64 / self.window.max(1.0);
            self.last_progress = now;
        } else if now.since(self.last_progress) > self.timeout && self.next_seq > self.acked {
            // Gap: halve, retransmit-equivalent (we just resume from acked).
            self.window = (self.window / 2.0).max(1.0);
            self.next_seq = self.acked;
            self.last_progress = now;
        }
        let mut out = Vec::new();
        while self.next_seq < self.acked + self.window.floor() as u64 {
            out.push(self.next_seq);
            self.sends.push((self.next_seq, now));
            self.next_seq += 1;
        }
        out
    }
}

/// Run two agents over a shared bottleneck for `t_end`. Returns delivered
/// bits per flow.
pub fn run_coexistence(
    truth: &mut TwoFlowTruth,
    a: &mut Agent,
    b: &mut Agent,
    t_end: Time,
) -> (u64, u64) {
    let mut delivered = (0u64, 0u64);
    let mut wake_a = Time::ZERO;
    let mut wake_b = Time::from_millis(100); // desynchronize slightly
    let mut acks_a: Vec<Observation> = Vec::new();
    let mut acks_b: Vec<Observation> = Vec::new();

    truth.net.run_until_sampled(Time::ZERO, &mut truth.rng);
    loop {
        let now = wake_a.min(wake_b);
        if now > t_end {
            break;
        }
        // Advance truth to `now`, harvesting deliveries.
        truth.net.run_until_sampled(now, &mut truth.rng);
        for (node, d) in truth.net.take_deliveries() {
            let obs = Observation {
                seq: d.packet.seq,
                at: d.at,
            };
            if node == truth.rx_a {
                delivered.0 += d.packet.size.as_u64();
                acks_a.push(obs);
            } else if node == truth.rx_b {
                delivered.1 += d.packet.size.as_u64();
                acks_b.push(obs);
            }
        }
        truth.net.take_drops();

        let send = |truth: &mut TwoFlowTruth, flow: FlowId, seqs: Vec<(u64, Bits)>| {
            for (seq, size) in seqs {
                truth
                    .net
                    .inject(truth.entry, Packet::new(flow, seq, size, now));
                while let Step::Pending(spec) = truth.net.run_until(now) {
                    let pick = usize::from(truth.rng.bernoulli(spec.p1));
                    truth.net.resolve(pick);
                }
            }
        };

        if wake_a <= wake_b {
            let acks = std::mem::take(&mut acks_a);
            match a {
                Agent::Model(s) => {
                    let outcome = s.on_wake(now, &acks);
                    send(
                        truth,
                        FLOW_A,
                        outcome.sent.iter().map(|p| (p.seq, p.size)).collect(),
                    );
                    wake_a = outcome.next_wake.max(now + Dur::from_millis(1));
                }
                Agent::Aimd(s) => {
                    let seqs = s.on_event(now, acks.len());
                    send(
                        truth,
                        FLOW_A,
                        seqs.into_iter()
                            .map(|q| (q, Bits::from_bytes(1_500)))
                            .collect(),
                    );
                    wake_a = now + Dur::from_millis(250);
                }
            }
        } else {
            let acks = std::mem::take(&mut acks_b);
            match b {
                Agent::Model(s) => {
                    let outcome = s.on_wake(now, &acks);
                    send(
                        truth,
                        FLOW_B,
                        outcome.sent.iter().map(|p| (p.seq, p.size)).collect(),
                    );
                    wake_b = outcome.next_wake.max(now + Dur::from_millis(1));
                }
                Agent::Aimd(s) => {
                    let seqs = s.on_event(now, acks.len());
                    send(
                        truth,
                        FLOW_B,
                        seqs.into_iter()
                            .map(|q| (q, Bits::from_bytes(1_500)))
                            .collect(),
                    );
                    wake_b = now + Dur::from_millis(250);
                }
            }
        }
    }
    delivered
}
