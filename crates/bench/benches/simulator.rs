//! Raw simulator throughput: 100 simulated seconds of the Figure-2
//! ground-truth network (pinger + gate + buffer + link + loss).

use augur_elements::{build_model, ModelParams};
use augur_sim::{SimRng, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("fig2_ground_truth_100s", |b| {
        b.iter(|| {
            let mut m = build_model(ModelParams::paper_ground_truth());
            let mut rng = SimRng::seed_from_u64(1);
            m.net.run_until_sampled(Time::from_secs(100), &mut rng);
            black_box(m.net.take_deliveries().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
