//! EXT-C (micro): cost of one 5-second belief-update window as the
//! hypothesis count grows — the engine-side of the paper's "more than a
//! few million configurations is impractical" remark (§3.2).

use augur_elements::{build_model, GateSpec, ModelParams};
use augur_inference::{Belief, BeliefConfig, Hypothesis};
use augur_sim::{BitRate, Bits, Ppm, Time};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn prior(n: usize) -> Vec<Hypothesis<ModelParams>> {
    (0..n)
        .map(|i| {
            let bps = 8_000 + (i as u64 * 8_000) / (n.max(2) as u64 - 1);
            let params = ModelParams {
                link_rate: BitRate::from_bps(bps.max(1)),
                cross_rate: BitRate::from_bps((bps * 7 / 10).max(1)),
                gate: GateSpec::AlwaysOn,
                loss: Ppm::ZERO,
                buffer_capacity: Bits::new(96_000),
                initial_fullness: Bits::ZERO,
                packet_size: Bits::from_bytes(1_500),
                cross_active: true,
            };
            Hypothesis {
                net: build_model(params).net,
                meta: params,
                weight: 1.0,
            }
        })
        .collect()
}

fn bench_belief(c: &mut Criterion) {
    let probe = build_model(ModelParams::paper_ground_truth());
    let mut group = c.benchmark_group("belief_advance_5s");
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let belief0 = Belief::new(
                prior(n),
                probe.entry,
                probe.rx_self,
                BeliefConfig {
                    fold_loss_node: Some(probe.loss),
                    max_branches: 2 * n,
                    ..BeliefConfig::default()
                },
            );
            b.iter(|| {
                let mut belief = belief0.clone();
                belief.advance(Time::from_secs(5), &[]).unwrap();
                black_box(belief.branch_count())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_belief
}
criterion_main!(benches);
