//! Planner cost: one full decision (idle baseline + 9 delays) over a
//! 512-branch planning set drawn from the paper prior.

use augur_bench::paper_belief;
use augur_core::{decide, DiscountedThroughput, PlannerConfig};
use augur_sim::{Bits, FlowId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_planner(c: &mut Criterion) {
    let belief = paper_belief(50_000);
    let utility = DiscountedThroughput::with_alpha(1.0);
    c.bench_function("decide_paper_prior_512_branches", |b| {
        b.iter(|| {
            black_box(decide(
                &belief,
                &PlannerConfig::default(),
                &utility,
                FlowId::SELF,
                0,
                Bits::from_bytes(1_500),
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_planner
}
criterion_main!(benches);
