//! ABL-2: last-mile loss folded analytically (weight multiplication)
//! versus forked explicitly (two branches conditioned separately) —
//! the paper's own design point (§3.2: last-mile loss "consequences do
//! not linger"). Both must give the same posterior; the fold must be
//! cheaper.

use augur_elements::{build_model, GateSpec, ModelParams, Step};
use augur_inference::{Belief, BeliefConfig, Hypothesis, Observation};
use augur_sim::{BitRate, Bits, FlowId, Packet, Ppm, SimRng, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn prior() -> Vec<Hypothesis<ModelParams>> {
    [10_000u64, 12_000, 14_000, 16_000]
        .iter()
        .flat_map(|&bps| {
            [0.0, 0.1, 0.2].iter().map(move |&p| {
                let params = ModelParams {
                    link_rate: BitRate::from_bps(bps),
                    cross_rate: BitRate::from_bps(bps * 7 / 10),
                    gate: GateSpec::AlwaysOn,
                    loss: Ppm::from_prob(p),
                    buffer_capacity: Bits::new(96_000),
                    initial_fullness: Bits::ZERO,
                    packet_size: Bits::from_bytes(1_500),
                    cross_active: true,
                };
                Hypothesis {
                    net: build_model(params).net,
                    meta: params,
                    weight: 1.0,
                }
            })
        })
        .collect()
}

/// 30 s of scripted sends against the paper-like truth; returns the acks.
fn script() -> Vec<(Time, Vec<Observation>, Option<Packet>)> {
    let mut truth = build_model(ModelParams {
        link_rate: BitRate::from_bps(12_000),
        cross_rate: BitRate::from_bps(8_400),
        gate: GateSpec::AlwaysOn,
        loss: Ppm::from_prob(0.2),
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::ZERO,
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    });
    let mut rng = SimRng::seed_from_u64(3);
    let mut out = Vec::new();
    let mut seq = 0;
    for s in 0..=30u64 {
        let t = Time::from_secs(s);
        truth.net.run_until_sampled(t, &mut rng);
        let acks: Vec<Observation> = truth
            .net
            .take_deliveries()
            .into_iter()
            .filter(|(n, d)| *n == truth.rx_self && d.packet.flow == FlowId::SELF)
            .map(|(_, d)| Observation {
                seq: d.packet.seq,
                at: d.at,
            })
            .collect();
        truth.net.take_drops();
        let send = (s % 2 == 0 && s < 30).then(|| {
            let p = Packet::new(FlowId::SELF, seq, Bits::from_bytes(1_500), t);
            seq += 1;
            p
        });
        if let Some(p) = send {
            truth.net.inject(truth.entry, p);
            while let Step::Pending(spec) = truth.net.run_until(t) {
                let pick = usize::from(rng.bernoulli(spec.p1));
                truth.net.resolve(pick);
            }
        }
        out.push((t, acks, send));
    }
    out
}

fn run(fold: bool, script: &[(Time, Vec<Observation>, Option<Packet>)]) -> usize {
    let probe = build_model(ModelParams::paper_ground_truth());
    let mut belief = Belief::new(
        prior(),
        probe.entry,
        probe.rx_self,
        BeliefConfig {
            fold_loss_node: Some(probe.loss),
            fold_self_loss: fold,
            ..BeliefConfig::default()
        },
    );
    for (t, acks, send) in script {
        belief.advance(*t, acks).unwrap();
        if let Some(p) = send {
            belief.inject(*p);
        }
    }
    belief.branch_count()
}

fn bench_loss(c: &mut Criterion) {
    let sc = script();
    c.bench_function("loss_fold_analytic", |b| {
        b.iter(|| black_box(run(true, &sc)))
    });
    c.bench_function("loss_fork_explicit", |b| {
        b.iter(|| black_box(run(false, &sc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_loss
}
criterion_main!(benches);
