//! ABL-1: state compaction. The paper argues forks "do not generally lead
//! to an unbounded explosion" *because* reconverged states are compacted
//! (§3.2). We measure an advance over a fork-heavy window (intermittent
//! gate, 10 epochs) with compaction as implemented, and the raw cost of
//! the compaction pass itself.

use augur_elements::{build_model, GateSpec, ModelParams};
use augur_inference::{compact, Belief, BeliefConfig, Hypothesis};
use augur_sim::{BitRate, Bits, Dur, Ppm, Time};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn forky_prior(n: usize) -> Vec<Hypothesis<ModelParams>> {
    (0..n)
        .map(|i| {
            let bps = 10_000 + (i as u64 * 6_000) / (n.max(2) as u64 - 1);
            let params = ModelParams {
                link_rate: BitRate::from_bps(bps),
                cross_rate: BitRate::from_bps(bps * 7 / 10),
                gate: GateSpec::Intermittent {
                    mtts: Dur::from_secs(100),
                    epoch: Dur::from_secs(1),
                    initially_connected: true,
                },
                loss: Ppm::from_prob(0.2),
                buffer_capacity: Bits::new(96_000),
                initial_fullness: Bits::ZERO,
                packet_size: Bits::from_bytes(1_500),
                cross_active: true,
            };
            Hypothesis {
                net: build_model(params).net,
                meta: params,
                weight: 1.0,
            }
        })
        .collect()
}

fn bench_compaction(c: &mut Criterion) {
    let probe = build_model(ModelParams::paper_ground_truth());

    // Fork-heavy advance: 10 gate epochs with no observations means 2^10
    // branch paths per hypothesis, bounded by compaction + the cap.
    c.bench_function("forky_advance_10_epochs_100_hyps", |b| {
        let belief0 = Belief::new(
            forky_prior(100),
            probe.entry,
            probe.rx_self,
            BeliefConfig {
                fold_loss_node: Some(probe.loss),
                max_branches: 20_000,
                ..BeliefConfig::default()
            },
        );
        b.iter(|| {
            let mut belief = belief0.clone();
            belief.advance(Time::from_secs(10), &[]).unwrap();
            black_box(belief.branch_count())
        })
    });

    // The compaction pass itself on a population with heavy duplication.
    c.bench_function("compact_10k_branches_100_states", |b| {
        let base = forky_prior(100);
        b.iter(|| {
            let mut pop: Vec<Hypothesis<ModelParams>> =
                (0..10_000).map(|i| base[i % base.len()].clone()).collect();
            black_box(compact(&mut pop))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compaction
}
criterion_main!(benches);
