#![forbid(unsafe_code)]
//! `augur` — end-to-end transmission control by modeling uncertainty
//! about the network state.
//!
//! A from-scratch Rust reproduction of Winstein & Balakrishnan,
//! *"End-to-End Transmission Control by Modeling Uncertainty about the
//! Network State"*, HotNets-X (2011): a sender that treats the network as
//! a nondeterministic automaton built from idealized elements, maintains
//! a probability distribution over its possible configurations by
//! conditioning on acknowledgment times, and at every moment takes the
//! action — transmit now, or sleep — that maximizes the expected value of
//! an explicit utility function.
//!
//! # Crates
//!
//! * [`sim`] — discrete-event substrate: integer virtual time, packets,
//!   deterministic event queue, seeded RNG.
//! * [`elements`] — the paper's element language (§3.1): BUFFER,
//!   THROUGHPUT, DELAY, LOSS, JITTER, PINGER, INTERMITTENT, SQUAREWAVE,
//!   RECEIVER, with SERIES / DIVERTER / EITHER composition, plus AQM
//!   (RED, CoDel), time-varying links and link-layer ARQ.
//! * [`inference`] — the belief engines (§3.2): exact enumeration with
//!   forking, compaction and pruning; and a bootstrap particle filter.
//! * [`core`] — the ISender (§3.2–3.4): utility functions, the
//!   expected-utility planner, the sender agent and the closed-loop
//!   experiment harness.
//! * [`tcp`] — the baseline the paper contrasts with: TCP Reno congestion
//!   control with Jacobson RTT estimation, over the same element networks.
//! * [`trace`] — measurement: time series, statistics, CSV, ASCII plots.
//! * [`scenario`] — experiments as data: declarative scenario specs,
//!   cartesian sweep grids, a parallel deterministic sweep runner, and
//!   CSV/JSONL report export.
//! * [`perf`] — the benchmarking & counters subsystem: a
//!   dependency-free harness, the always-on work-counters facade, named
//!   suites, and the `perf` CLI emitting `BENCH_<suite>.json`.
//!
//! # Quickstart
//!
//! ```
//! use augur::prelude::*;
//!
//! // The paper's Figure-2 network with its "actual" parameters...
//! let m = build_model(ModelParams::paper_ground_truth());
//! let mut truth = GroundTruth {
//!     net: m.net,
//!     entry: m.entry,
//!     rx_self: m.rx_self,
//!     rng: SimRng::seed_from_u64(7),
//! };
//! // ...a sender holding the paper's prior and the α = 1 utility...
//! let belief = ModelPrior::paper().belief(BeliefConfig::default());
//! let mut sender = ISender::new(
//!     belief,
//!     Box::new(DiscountedThroughput::with_alpha(1.0)),
//!     ISenderConfig::default(),
//! );
//! // ...run the closed loop for ten simulated seconds.
//! let trace = run_closed_loop(&mut truth, &mut sender, Time::from_secs(10)).unwrap();
//! assert!(!trace.sends.is_empty());
//! ```

pub use augur_core as core;
pub use augur_elements as elements;
pub use augur_inference as inference;
pub use augur_perf as perf;
pub use augur_scenario as scenario;
pub use augur_sim as sim;
pub use augur_tcp as tcp;
pub use augur_trace as trace;

/// The commonly-used surface in one import.
pub mod prelude {
    pub use augur_core::{
        decide, run_closed_loop, Action, DiscountedThroughput, GroundTruth, ISender, ISenderConfig,
        ParticleSender, PlannerConfig, RunTrace, SenderAgent, Utility,
    };
    pub use augur_elements::{
        build_cellular, build_model, Buffer, CellularParams, Element, GateSpec, Link, ModelNet,
        ModelParams, Network, NetworkBuilder, NodeId, RateProcess, ReceiverEl, Step,
    };
    pub use augur_inference::{
        Belief, BeliefConfig, Hypothesis, ModelPrior, Observation, ParticleConfig, ParticleFilter,
    };
    pub use augur_scenario::{
        Axis, PriorSpec, ScenarioSpec, SenderSpec, SweepGrid, SweepReport, SweepRunner,
        WorkloadSpec,
    };
    pub use augur_sim::{BitRate, Bits, Dur, FlowId, Packet, Ppm, SimRng, Time};
    pub use augur_tcp::{TcpConfig, TcpRunner};
    pub use augur_trace::{render, write_wide, PlotConfig, Series};
}
