//! Cross-crate invariants of the belief machinery.

use augur::prelude::*;
use proptest::prelude::*;

fn small_belief() -> Belief<ModelParams> {
    ModelPrior::small().belief(BeliefConfig::default())
}

#[test]
fn weights_always_sum_to_one_after_advance() {
    let mut belief = small_belief();
    let mut truth = build_model(ModelParams {
        link_rate: BitRate::from_bps(12_000),
        cross_rate: BitRate::from_bps(8_400),
        gate: GateSpec::Intermittent {
            mtts: Dur::from_secs(100),
            epoch: Dur::from_secs(1),
            initially_connected: true,
        },
        loss: Ppm::from_prob(0.2),
        buffer_capacity: Bits::new(96_000),
        initial_fullness: Bits::ZERO,
        packet_size: Bits::from_bytes(1_500),
        cross_active: true,
    });
    let mut rng = SimRng::seed_from_u64(17);
    let mut seq = 0;
    for s in 1..=20u64 {
        let t = Time::from_secs(s);
        truth.net.run_until_sampled(t, &mut rng);
        let acks: Vec<Observation> = truth
            .net
            .take_deliveries()
            .into_iter()
            .filter(|(n, d)| *n == truth.rx_self && d.packet.flow == FlowId::SELF)
            .map(|(_, d)| Observation {
                seq: d.packet.seq,
                at: d.at,
            })
            .collect();
        truth.net.take_drops();
        belief.advance(t, &acks).expect("belief died");
        let total: f64 = belief.branches().iter().map(|h| h.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total} at {t}");
        if s % 2 == 0 {
            let pkt = Packet::new(FlowId::SELF, seq, Bits::from_bytes(1_500), t);
            seq += 1;
            belief.inject(pkt);
            truth.net.inject(truth.entry, pkt);
            while let Step::Pending(spec) = truth.net.run_until(t) {
                let pick = usize::from(rng.bernoulli(spec.p1));
                truth.net.resolve(pick);
            }
        }
    }
}

#[test]
fn fold_and_fork_agree_on_the_posterior() {
    // ABL-2 as a correctness statement: analytic last-mile folding and
    // explicit forking are the same Bayesian update.
    let run = |fold: bool| {
        let prior = ModelPrior::small();
        let probe = build_model(ModelParams::paper_ground_truth());
        let mut belief = Belief::new(
            prior.hypotheses(),
            probe.entry,
            probe.rx_self,
            BeliefConfig {
                fold_loss_node: Some(probe.loss),
                fold_self_loss: fold,
                ..BeliefConfig::default()
            },
        );
        let mut truth = build_model(ModelParams {
            gate: GateSpec::Intermittent {
                mtts: Dur::from_secs(100),
                epoch: Dur::from_secs(1),
                initially_connected: true,
            },
            ..ModelParams::paper_ground_truth()
        });
        let mut rng = SimRng::seed_from_u64(31);
        let mut seq = 0;
        for s in 1..=20u64 {
            let t = Time::from_secs(s);
            truth.net.run_until_sampled(t, &mut rng);
            let acks: Vec<Observation> = truth
                .net
                .take_deliveries()
                .into_iter()
                .filter(|(n, d)| *n == truth.rx_self && d.packet.flow == FlowId::SELF)
                .map(|(_, d)| Observation {
                    seq: d.packet.seq,
                    at: d.at,
                })
                .collect();
            truth.net.take_drops();
            belief.advance(t, &acks).expect("belief died");
            if s % 2 == 0 {
                let pkt = Packet::new(FlowId::SELF, seq, Bits::from_bytes(1_500), t);
                seq += 1;
                belief.inject(pkt);
                truth.net.inject(truth.entry, pkt);
                while let Step::Pending(spec) = truth.net.run_until(t) {
                    let pick = usize::from(rng.bernoulli(spec.p1));
                    truth.net.resolve(pick);
                }
            }
        }
        belief
            .marginal(|h| (h.meta.link_rate, h.meta.loss))
            .into_iter()
            .map(|(k, w)| (k, (w * 1e9).round() as i64))
            .collect::<std::collections::BTreeMap<_, _>>()
    };
    assert_eq!(run(true), run(false));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pruning keeps the heaviest mass and normalization restores a
    /// probability distribution, for arbitrary weight vectors.
    #[test]
    fn prune_and_normalize(weights in prop::collection::vec(1e-12f64..1.0, 2..50)) {
        let probe = build_model(ModelParams::paper_ground_truth());
        let mut branches: Vec<Hypothesis<u32>> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Hypothesis {
                net: probe.net.clone(),
                meta: i as u32,
                weight: w,
            })
            .collect();
        let keep = (weights.len() / 2).max(1);
        augur::inference::prune(&mut branches, keep, 0.0);
        prop_assert!(branches.len() <= keep);
        let min_kept = branches.iter().map(|h| h.weight).fold(f64::MAX, f64::min);
        // No discarded weight may exceed a kept one.
        let mut sorted = weights.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        prop_assert!(min_kept >= sorted[keep.min(sorted.len()) - 1] - 1e-15);
        let evidence = augur::inference::normalize(&mut branches);
        prop_assert!(evidence > 0.0);
        let total: f64 = branches.iter().map(|h| h.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
