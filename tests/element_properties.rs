//! Property-based tests on the element language: conservation, ordering
//! and rate conformance must hold for arbitrary topneck parameters and
//! arbitrary workloads.

use augur::prelude::*;
use proptest::prelude::*;

/// Build buffer → link → receiver and push a workload through it.
fn run_path(
    capacity_bits: u64,
    rate_bps: u64,
    sends: &[(u64, u64)], // (time_ms, size_bits)
    horizon_s: u64,
) -> (Vec<(u64, Time)>, usize, usize) {
    let mut b = NetworkBuilder::new();
    let buf = b.add(Element::Buffer(augur::elements::Buffer::drop_tail(
        Bits::new(capacity_bits),
    )));
    let link = b.add(Element::Link(augur::elements::Link::constant(
        BitRate::from_bps(rate_bps),
    )));
    let rx = b.add(Element::Receiver(ReceiverEl));
    b.connect(buf, link);
    b.connect(link, rx);
    let mut net = b.build();

    for (i, &(t_ms, bits)) in sends.iter().enumerate() {
        net.run_until(Time::from_millis(t_ms));
        net.inject(
            buf,
            Packet::new(
                FlowId::SELF,
                i as u64,
                Bits::new(bits.max(1)),
                Time::from_millis(t_ms),
            ),
        );
    }
    net.run_until(Time::from_secs(horizon_s));
    let deliveries: Vec<(u64, Time)> = net
        .take_deliveries()
        .into_iter()
        .map(|(_, d)| (d.packet.seq, d.at))
        .collect();
    let drops = net.take_drops().len();
    let in_flight = sends.len() - deliveries.len() - drops;
    (deliveries, drops, in_flight)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected packet is delivered, dropped, or still in flight.
    #[test]
    fn conservation(
        capacity in 12_000u64..200_000,
        rate in 1_000u64..1_000_000,
        sends in prop::collection::vec((0u64..5_000, 100u64..12_000), 1..40),
    ) {
        let mut sends = sends;
        sends.sort();
        let n = sends.len();
        let (deliveries, drops, in_flight) = run_path(capacity, rate, &sends, 10_000);
        prop_assert_eq!(deliveries.len() + drops + in_flight, n);
        // 10,000 s is far beyond any queue's drain time here.
        prop_assert_eq!(in_flight, 0, "packets vanished in flight");
    }

    /// FIFO: deliveries leave in injection order with nondecreasing times.
    #[test]
    fn fifo_ordering(
        rate in 1_000u64..100_000,
        sends in prop::collection::vec((0u64..3_000, 1_000u64..12_000), 1..30),
    ) {
        let mut sends = sends;
        sends.sort();
        // Huge buffer: no drops, pure queueing.
        let (deliveries, drops, _) = run_path(10_000_000, rate, &sends, 10_000);
        prop_assert_eq!(drops, 0);
        for w in deliveries.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "sequence order violated");
            prop_assert!(w[0].1 <= w[1].1, "delivery times non-monotone");
        }
    }

    /// The link never delivers faster than its rate allows: the k-th
    /// delivery cannot complete before the serialization time of
    /// everything delivered up to and including it.
    #[test]
    fn rate_conformance(
        rate in 1_000u64..200_000,
        sends in prop::collection::vec((0u64..1_000, 1_000u64..12_000), 1..25),
    ) {
        let mut sends = sends;
        sends.sort();
        let (deliveries, _, _) = run_path(10_000_000, rate, &sends, 10_000);
        let mut bits_so_far = 0u64;
        for (i, &(seq, at)) in deliveries.iter().enumerate() {
            bits_so_far += sends[seq as usize].1.max(1);
            // Serialization of `bits_so_far` bits takes at least this long.
            let min_us = bits_so_far as u128 * 1_000_000 / rate as u128;
            prop_assert!(
                at.as_micros() as u128 >= min_us,
                "delivery {i} at {at} beats the link rate"
            );
        }
    }

    /// Tail-drop honors capacity: with sends batched at t=0, everything
    /// beyond (capacity + one in service) drops.
    #[test]
    fn tail_drop_capacity(
        pkts in 2u64..30,
        capacity_pkts in 1u64..10,
    ) {
        let sends: Vec<(u64, u64)> = (0..pkts).map(|_| (0u64, 12_000u64)).collect();
        let (deliveries, drops, _) =
            run_path(capacity_pkts * 12_000, 12_000, &sends, 10_000);
        let kept = (capacity_pkts + 1).min(pkts); // queue + in service
        prop_assert_eq!(deliveries.len() as u64, kept);
        prop_assert_eq!(drops as u64, pkts - kept);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The utility identity the paper quotes (TXT3):
    /// Σ e^(−t/(1000r)) = 1/(1 − e^(−1/(1000r))) ≈ 1000r + 0.5.
    #[test]
    fn utility_stream_identity(r in 0.01f64..1_000.0) {
        let exact = augur::core::discounted_stream_sum(r);
        let approx = 1000.0 * r + 0.5;
        let rel = (exact - approx).abs() / exact;
        prop_assert!(rel < 0.01, "r={r}: exact={exact}, approx={approx}");
    }

    /// Discounting is monotone: later delivery is never worth more.
    #[test]
    fn discount_monotone(tau1 in 0.0f64..1e6, dtau in 0.0f64..1e6) {
        let u = augur::core::DiscountedThroughput::own_only();
        prop_assert!(u.discount(tau1) >= u.discount(tau1 + dtau));
    }
}
