//! Whole-system determinism: a simulation is a pure function of its
//! configuration and seed. This guards the reproducibility contract that
//! the belief engine's exact-match conditioning depends on (and catches
//! regressions like hash-map iteration order leaking into decisions).

use augur::prelude::*;

fn run_once() -> (Vec<(u64, Time)>, Vec<Observation>, usize) {
    let truth_params = ModelParams {
        gate: GateSpec::AlwaysOn,
        ..ModelParams::paper_ground_truth()
    };
    let m = build_model(truth_params);
    let mut truth = GroundTruth {
        net: m.net,
        entry: m.entry,
        rx_self: m.rx_self,
        rng: SimRng::seed_from_u64(123),
    };
    let prior = ModelPrior::small();
    let mut sender = ISender::new(
        prior.belief(BeliefConfig::default()),
        Box::new(DiscountedThroughput::with_alpha(1.0)),
        ISenderConfig::default(),
    );
    let trace = run_closed_loop(&mut truth, &mut sender, Time::from_secs(30)).unwrap();
    (
        trace.sends.clone(),
        trace.acks.clone(),
        sender.belief.branch_count(),
    )
}

#[test]
fn closed_loop_is_reproducible() {
    let a = run_once();
    let b = run_once();
    assert_eq!(a.0, b.0, "send schedules differ between identical runs");
    assert_eq!(a.1, b.1, "ack streams differ between identical runs");
    assert_eq!(a.2, b.2, "belief populations differ between identical runs");
}

#[test]
fn different_seeds_give_different_loss_patterns() {
    let run = |seed: u64| {
        let m = build_model(ModelParams::paper_ground_truth());
        let mut net = m.net;
        let mut rng = SimRng::seed_from_u64(seed);
        net.run_until_sampled(Time::from_secs(200), &mut rng);
        net.take_deliveries().len()
    };
    // 20% loss on the cross traffic: different seeds, different survivor
    // counts (with overwhelming probability for a 140-packet stream).
    let counts: Vec<usize> = (0..5).map(run).collect();
    assert!(
        counts.windows(2).any(|w| w[0] != w[1]),
        "five seeds produced identical loss patterns: {counts:?}"
    );
}

#[test]
fn ground_truth_sampling_is_seed_deterministic() {
    let run = || {
        let m = build_model(ModelParams::paper_ground_truth());
        let mut net = m.net;
        let mut rng = SimRng::seed_from_u64(9);
        net.run_until_sampled(Time::from_secs(150), &mut rng);
        net.take_deliveries()
            .iter()
            .map(|(_, d)| (d.packet.seq, d.at))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
